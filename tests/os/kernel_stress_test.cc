// Randomized kernel stress: for a sweep of seeds, run mixed workloads under
// every policy and assert the global invariants that must hold regardless
// of scheduling decisions — exact time accounting, instruction conservation
// between per-thread and per-core views, affinity, counter sanity, and
// bit-exact determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "arch/platform.h"
#include "os/gts_balancer.h"
#include "os/kernel.h"
#include "os/vanilla_balancer.h"
#include "perf/perf_model.h"
#include "power/power_model.h"
#include "workload/benchmarks.h"
#include "workload/synthetic.h"

namespace sb::os {
namespace {

struct StressCase {
  std::uint64_t seed;
  int policy;  // 0=null 1=vanilla 2=gts(biglittle only)
  bool big_little;
};

class KernelStress
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

std::unique_ptr<LoadBalancer> make_policy(int id) {
  switch (id) {
    case 1:
      return std::make_unique<VanillaBalancer>();
    case 2:
      return std::make_unique<GtsBalancer>();
    default:
      return std::make_unique<NullBalancer>();
  }
}

void populate(Kernel& k, Rng& rng) {
  const char* names[] = {"canneal", "swaptions",  "bodytrack",
                         "IMB_HTHI", "IMB_LTLI",  "x264_H_crew",
                         "streamcluster"};
  const int kinds = 2 + static_cast<int>(rng.randi(0, 3));
  for (int i = 0; i < kinds; ++i) {
    const auto& name = names[rng.randi(0, 7)];
    auto threads = workload::BenchmarkLibrary::get(name).spawn(
        1 + static_cast<int>(rng.randi(0, 4)), rng);
    for (auto& t : threads) {
      // Some tasks are finite, some pinned, some reniced.
      if (rng.uniform() < 0.3) t.total_instructions = 5'000'000;
      if (rng.uniform() < 0.3) t.nice = static_cast<int>(rng.randi(-5, 6));
      k.fork(std::move(t));
    }
  }
}

TEST_P(KernelStress, InvariantsHoldUnderRandomLoad) {
  const auto [seed_base, policy, big_little] = GetParam();
  const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(seed_base);
  const auto platform = big_little ? arch::Platform::octa_big_little()
                                   : arch::Platform::quad_heterogeneous();
  if (policy == 2 && !big_little) GTEST_SKIP() << "GTS needs big.LITTLE";

  perf::PerfModel perf(platform);
  power::PowerModel power(platform, perf);
  KernelConfig cfg;
  cfg.seed = seed;
  Kernel k(platform, perf, power, cfg);
  k.set_balancer(make_policy(policy));
  Rng rng(seed);
  populate(k, rng);

  // Pin one task to a random core as an affinity probe.
  const ThreadId pinned = 0;
  const CoreId pin_core = static_cast<CoreId>(rng.randi(0, platform.num_cores()));
  std::bitset<kMaxCores> mask;
  mask.set(static_cast<std::size_t>(pin_core));
  k.set_cpus_allowed(pinned, mask);

  const TimeNs duration = milliseconds(300);
  k.run_for(duration);

  // --- Invariant 1: per-core time is exactly accounted ---
  for (CoreId c = 0; c < k.num_cores(); ++c) {
    EXPECT_EQ(k.energy().busy_time(c) + k.energy().idle_time(c) +
                  k.energy().sleep_time(c),
              duration)
        << "core " << c;
  }

  // --- Invariant 2: instruction conservation across views ---
  std::uint64_t core_insts = 0;
  for (CoreId c = 0; c < k.num_cores(); ++c) core_insts += k.core_instructions(c);
  EXPECT_EQ(core_insts, k.total_instructions());

  // --- Invariant 3: affinity respected ---
  EXPECT_EQ(k.task(pinned).cpu, pin_core);

  // --- Invariant 4: counter and energy sanity for every task ---
  for (std::size_t i = 0; i < k.num_tasks(); ++i) {
    const Task& t = k.task(static_cast<ThreadId>(i));
    const auto& c = t.epoch_counters;
    EXPECT_LE(c.inst_mem, c.inst_total) << t.name;
    EXPECT_LE(c.inst_branch, c.inst_total) << t.name;
    EXPECT_LE(c.branch_mispred, c.inst_branch + 1) << t.name;
    EXPECT_LE(c.l1d_miss, c.l1d_access + 1) << t.name;
    EXPECT_GE(t.lifetime_energy_j, 0.0) << t.name;
    EXPECT_FALSE(std::isnan(t.lifetime_energy_j)) << t.name;
    if (t.behavior.total_instructions > 0 && t.state == TaskState::Exited) {
      EXPECT_NEAR(static_cast<double>(t.lifetime_insts),
                  static_cast<double>(t.behavior.total_instructions), 2.0)
          << t.name;
    }
  }

  // --- Invariant 5: energy is positive and finite ---
  const double joules = k.energy().total_joules();
  EXPECT_GT(joules, 0.0);
  EXPECT_FALSE(std::isnan(joules));

  // --- Invariant 6: bit-exact determinism ---
  Kernel k2(platform, perf, power, cfg);
  k2.set_balancer(make_policy(policy));
  Rng rng2(seed);
  populate(k2, rng2);
  k2.set_cpus_allowed(pinned, mask);
  k2.run_for(duration);
  EXPECT_EQ(k2.total_instructions(), k.total_instructions());
  EXPECT_DOUBLE_EQ(k2.energy().total_joules(), joules);
  EXPECT_EQ(k2.total_migrations(), k.total_migrations());
}

INSTANTIATE_TEST_SUITE_P(Sweep, KernelStress,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(0, 1, 2),
                                            ::testing::Bool()));

}  // namespace
}  // namespace sb::os
