#include "os/task.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sb::os {
namespace {

TEST(NiceToWeight, LinuxTableAnchors) {
  EXPECT_EQ(nice_to_weight(0), 1024u);
  EXPECT_EQ(nice_to_weight(-20), 88761u);
  EXPECT_EQ(nice_to_weight(19), 15u);
  EXPECT_EQ(nice_to_weight(1), 820u);
  EXPECT_EQ(nice_to_weight(-1), 1277u);
  EXPECT_EQ(nice_to_weight(5), 335u);
}

TEST(NiceToWeight, MonotoneDecreasing) {
  for (int n = -20; n < 19; ++n) {
    EXPECT_GT(nice_to_weight(n), nice_to_weight(n + 1)) << "nice " << n;
  }
}

TEST(NiceToWeight, TwentyFivePercentRule) {
  // Each nice step changes share by ~25% (Linux invariant, loosely).
  for (int n = -10; n < 10; ++n) {
    const double ratio = static_cast<double>(nice_to_weight(n)) /
                         static_cast<double>(nice_to_weight(n + 1));
    EXPECT_NEAR(ratio, 1.25, 0.04) << "nice " << n;
  }
}

TEST(NiceToWeight, OutOfRangeThrows) {
  EXPECT_THROW(nice_to_weight(-21), std::out_of_range);
  EXPECT_THROW(nice_to_weight(20), std::out_of_range);
}

TEST(Task, DefaultsAllowAllCores) {
  Task t;
  for (CoreId c : {0, 1, 63, 255}) EXPECT_TRUE(t.can_run_on(c));
  EXPECT_FALSE(t.can_run_on(-1));
  EXPECT_FALSE(t.can_run_on(kMaxCores));
}

TEST(Task, AffinityMask) {
  Task t;
  t.cpus_allowed.reset();
  t.cpus_allowed.set(2);
  EXPECT_TRUE(t.can_run_on(2));
  EXPECT_FALSE(t.can_run_on(0));
}

TEST(Task, StateNames) {
  EXPECT_STREQ(to_string(TaskState::Runnable), "Runnable");
  EXPECT_STREQ(to_string(TaskState::Running), "Running");
  EXPECT_STREQ(to_string(TaskState::Sleeping), "Sleeping");
  EXPECT_STREQ(to_string(TaskState::Exited), "Exited");
}

TEST(Task, PhaseAccessorsCycle) {
  Task t;
  workload::WorkloadProfile p;
  p.name = "a";
  t.behavior.phases.push_back({p, 100});
  p.name = "b";
  t.behavior.phases.push_back({p, 200});
  t.phase_idx = 0;
  EXPECT_EQ(t.current_profile().name, "a");
  EXPECT_EQ(t.current_phase_length(), 100u);
  t.phase_idx = 1;
  EXPECT_EQ(t.current_profile().name, "b");
  t.phase_idx = 2;  // wraps via modulo
  EXPECT_EQ(t.current_profile().name, "a");
}

TEST(Task, EpochAccumulatorReset) {
  Task t;
  t.epoch_counters.inst_total = 5;
  t.epoch_energy_j = 1.5;
  t.epoch_runtime = 10;
  t.reset_epoch_accumulators();
  EXPECT_TRUE(t.epoch_counters.empty());
  EXPECT_EQ(t.epoch_energy_j, 0.0);
  EXPECT_EQ(t.epoch_runtime, 0);
}

TEST(Task, AliveStates) {
  Task t;
  t.state = TaskState::Sleeping;
  EXPECT_TRUE(t.alive());
  t.state = TaskState::Exited;
  EXPECT_FALSE(t.alive());
}

}  // namespace
}  // namespace sb::os
