#include "os/vanilla_balancer.h"

#include <gtest/gtest.h>

#include <memory>

#include "arch/platform.h"
#include "os/kernel.h"
#include "perf/perf_model.h"
#include "power/power_model.h"

namespace sb::os {
namespace {

workload::ThreadBehavior cpu_bound(const std::string& name) {
  workload::ThreadBehavior tb;
  tb.name = name;
  workload::WorkloadProfile p;
  tb.phases.push_back({p, 50'000'000});
  return tb;
}

class VanillaBalancerTest : public ::testing::Test {
 protected:
  VanillaBalancerTest()
      : platform_(arch::Platform::homogeneous(arch::medium_core(), 4)),
        perf_(platform_),
        power_(platform_, perf_) {}

  arch::Platform platform_;
  perf::PerfModel perf_;
  power::PowerModel power_;
};

TEST_F(VanillaBalancerTest, SpreadsPiledUpThreads) {
  Kernel k(platform_, perf_, power_);
  k.set_balancer(std::make_unique<VanillaBalancer>());
  // Pile 8 threads onto core 0.
  for (int i = 0; i < 8; ++i) {
    k.fork_on(cpu_bound("t" + std::to_string(i)), 0);
  }
  k.run_for(milliseconds(100));
  // After balancing, every core should have work.
  for (CoreId c = 0; c < 4; ++c) {
    EXPECT_GE(k.core_nr_running(c), 1) << "core " << c;
    EXPECT_GT(k.core_instructions(c), 0u) << "core " << c;
  }
  // Load spread is near-even (2 each ±1).
  for (CoreId c = 0; c < 4; ++c) {
    EXPECT_LE(k.core_nr_running(c), 3);
  }
  EXPECT_GT(k.total_migrations(), 0u);
}

TEST_F(VanillaBalancerTest, LeavesBalancedSystemAlone) {
  Kernel k(platform_, perf_, power_);
  k.set_balancer(std::make_unique<VanillaBalancer>());
  for (int i = 0; i < 4; ++i) {
    k.fork(cpu_bound("t" + std::to_string(i)));  // round-robin: 1 per core
  }
  k.run_for(milliseconds(100));
  EXPECT_EQ(k.total_migrations(), 0u);
}

TEST_F(VanillaBalancerTest, RespectsAffinity) {
  Kernel k(platform_, perf_, power_);
  k.set_balancer(std::make_unique<VanillaBalancer>());
  std::bitset<kMaxCores> only0;
  only0.set(0);
  for (int i = 0; i < 4; ++i) {
    const ThreadId t = k.fork_on(cpu_bound("p" + std::to_string(i)), 0);
    k.set_cpus_allowed(t, only0);
  }
  k.run_for(milliseconds(60));
  for (ThreadId t : k.alive_threads()) EXPECT_EQ(k.task(t).cpu, 0);
}

TEST_F(VanillaBalancerTest, CountsPasses) {
  Kernel k(platform_, perf_, power_);
  auto bal = std::make_unique<VanillaBalancer>();
  auto* p = bal.get();
  k.set_balancer(std::move(bal));
  k.fork(cpu_bound("a"));
  k.run_for(milliseconds(60));
  EXPECT_GE(p->passes(), 9u);  // every 6 ms
  EXPECT_EQ(p->name(), "vanilla");
}

TEST_F(VanillaBalancerTest, HeterogeneityBlindOnHmp) {
  // On the 4-type HMP, vanilla equalizes *thread counts*, not capability:
  // with 8 identical threads it ends up ~2 per core regardless of the 10×
  // IPS gap between Huge and Small — precisely Fig. 1(a)'s criticism.
  auto hmp = arch::Platform::quad_heterogeneous();
  perf::PerfModel perf(hmp);
  power::PowerModel power(hmp, perf);
  Kernel k(hmp, perf, power);
  k.set_balancer(std::make_unique<VanillaBalancer>());
  for (int i = 0; i < 8; ++i) k.fork_on(cpu_bound("t" + std::to_string(i)), 0);
  k.run_for(milliseconds(200));
  for (CoreId c = 0; c < 4; ++c) {
    EXPECT_GE(k.core_nr_running(c), 1);
    EXPECT_LE(k.core_nr_running(c), 3);
  }
}

}  // namespace
}  // namespace sb::os
