#include "os/gts_balancer.h"

#include <gtest/gtest.h>

#include <memory>

#include "arch/platform.h"
#include "os/kernel.h"
#include "perf/perf_model.h"
#include "power/power_model.h"

namespace sb::os {
namespace {

workload::ThreadBehavior cpu_bound(const std::string& name) {
  workload::ThreadBehavior tb;
  tb.name = name;
  workload::WorkloadProfile p;
  tb.phases.push_back({p, 50'000'000});
  return tb;
}

workload::ThreadBehavior mostly_idle(const std::string& name) {
  workload::ThreadBehavior tb = cpu_bound(name);
  tb.burst_instructions = 200'000;
  tb.sleep_mean_ns = milliseconds(15);
  return tb;
}

class GtsTest : public ::testing::Test {
 protected:
  GtsTest()
      : platform_(arch::Platform::octa_big_little()),
        perf_(platform_),
        power_(platform_, perf_) {}

  bool on_big(const Kernel& k, ThreadId t) {
    return platform_.type_of(k.task(t).cpu) == 0;  // type 0 = A15
  }

  arch::Platform platform_;
  perf::PerfModel perf_;
  power::PowerModel power_;
};

TEST_F(GtsTest, UpMigratesBusyThreadFromLittle) {
  Kernel k(platform_, perf_, power_);
  auto bal = std::make_unique<GtsBalancer>();
  auto* p = bal.get();
  k.set_balancer(std::move(bal));
  const ThreadId t = k.fork_on(cpu_bound("busy"), 5);  // a LITTLE core
  k.run_for(milliseconds(200));
  EXPECT_TRUE(on_big(k, t));
  EXPECT_GE(p->up_migrations(), 1u);
}

TEST_F(GtsTest, DownMigratesIdleThreadFromBig) {
  Kernel k(platform_, perf_, power_);
  auto bal = std::make_unique<GtsBalancer>();
  auto* p = bal.get();
  k.set_balancer(std::move(bal));
  const ThreadId t = k.fork_on(mostly_idle("idle"), 0);  // a big core
  k.run_for(milliseconds(400));
  EXPECT_FALSE(on_big(k, t));
  EXPECT_GE(p->down_migrations(), 1u);
}

TEST_F(GtsTest, SteadyStateNoPingPong) {
  Kernel k(platform_, perf_, power_);
  auto bal = std::make_unique<GtsBalancer>();
  auto* p = bal.get();
  k.set_balancer(std::move(bal));
  const ThreadId busy = k.fork_on(cpu_bound("busy"), 4);
  const ThreadId idle = k.fork_on(mostly_idle("idle"), 0);
  k.run_for(milliseconds(300));
  const auto migrations_early = k.total_migrations();
  k.run_for(milliseconds(300));
  // Hysteresis gap (0.25..0.65) means no further migration churn.
  EXPECT_LE(k.total_migrations() - migrations_early, 2u);
  EXPECT_TRUE(on_big(k, busy));
  EXPECT_FALSE(on_big(k, idle));
  EXPECT_GT(p->passes(), 40u);
}

TEST_F(GtsTest, BalancesWithinClusters) {
  Kernel k(platform_, perf_, power_);
  k.set_balancer(std::make_unique<GtsBalancer>());
  // Six busy threads piled on one big core: they stay big (util high) but
  // should spread over the 4 big cores.
  for (int i = 0; i < 6; ++i) k.fork_on(cpu_bound("t" + std::to_string(i)), 0);
  k.run_for(milliseconds(300));
  int populated_big = 0;
  for (CoreId c = 0; c < 4; ++c) {
    if (k.core_nr_running(c) > 0) ++populated_big;
  }
  EXPECT_GE(populated_big, 3);
}

TEST_F(GtsTest, BinaryDecisionIgnoresEfficiency) {
  // The structural limitation §6.1 quantifies: GTS up-migrates ANY
  // high-utilization thread, even a memory-bound one that gains little
  // from a big core while burning its power.
  Kernel k(platform_, perf_, power_);
  k.set_balancer(std::make_unique<GtsBalancer>());
  workload::ThreadBehavior tb;
  tb.name = "membound";
  workload::WorkloadProfile p;
  p.ilp = 1.1;
  p.mem_share = 0.4;
  p.footprint_d_kb = 8192;
  p.mr_l1d_ref = 0.15;
  p.l2_miss_ratio = 0.7;
  tb.phases.push_back({p, 50'000'000});
  const ThreadId t = k.fork_on(tb, 5);
  k.run_for(milliseconds(300));
  EXPECT_EQ(platform_.type_of(k.task(t).cpu), 0)
      << "GTS hoists the CPU-hogging memory-bound thread to an A15";
}

}  // namespace
}  // namespace sb::os
