#include <gtest/gtest.h>

#include <memory>

#include "arch/platform.h"
#include "os/iks_balancer.h"
#include "os/kernel.h"
#include "os/utilaware_balancer.h"
#include "perf/perf_model.h"
#include "power/power_model.h"

namespace sb::os {
namespace {

workload::ThreadBehavior cpu_bound(const std::string& name) {
  workload::ThreadBehavior tb;
  tb.name = name;
  workload::WorkloadProfile p;
  tb.phases.push_back({p, 50'000'000});
  return tb;
}

workload::ThreadBehavior light(const std::string& name) {
  auto tb = cpu_bound(name);
  tb.burst_instructions = 200'000;
  tb.sleep_mean_ns = milliseconds(12);
  return tb;
}

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest()
      : platform_(arch::Platform::octa_big_little()),
        perf_(platform_),
        power_(platform_, perf_) {}

  bool on_big(const Kernel& k, ThreadId t) {
    return platform_.type_of(k.task(t).cpu) == 0;
  }

  arch::Platform platform_;
  perf::PerfModel perf_;
  power::PowerModel power_;
};

TEST_F(BaselinesTest, IksSwitchesPairToBigUnderLoad) {
  Kernel k(platform_, perf_, power_);
  auto bal = std::make_unique<IksBalancer>();
  auto* bp = bal.get();
  k.set_balancer(std::move(bal));
  const ThreadId t = k.fork_on(cpu_bound("hog"), 4);  // a little core
  k.run_for(milliseconds(300));
  EXPECT_TRUE(on_big(k, t));
  EXPECT_GE(bp->switches(), 1u);
}

TEST_F(BaselinesTest, IksFallsBackToLittleWhenIdle) {
  Kernel k(platform_, perf_, power_);
  k.set_balancer(std::make_unique<IksBalancer>());
  const ThreadId t = k.fork_on(light("nap"), 0);  // a big core
  k.run_for(milliseconds(400));
  EXPECT_FALSE(on_big(k, t));
}

TEST_F(BaselinesTest, IksMovesWholePairsNotThreads) {
  // Two threads sharing one pair: a hog and a light task. IKS's cluster
  // granularity forces BOTH onto the big member — the inefficiency GTS and
  // SmartBalance fix with per-thread decisions.
  Kernel k(platform_, perf_, power_);
  std::bitset<kMaxCores> pair_mask;
  pair_mask.set(0);
  pair_mask.set(4);  // pair (big 0, little 4)
  auto bal = std::make_unique<IksBalancer>();
  IksBalancer::Config cfg;
  cfg.balance_pairs = false;
  bal = std::make_unique<IksBalancer>(cfg);
  k.set_balancer(std::move(bal));
  const ThreadId hog = k.fork_on(cpu_bound("hog"), 4);
  const ThreadId nap = k.fork_on(light("nap"), 4);
  k.set_cpus_allowed(hog, pair_mask);
  k.set_cpus_allowed(nap, pair_mask);
  k.run_for(milliseconds(300));
  EXPECT_TRUE(on_big(k, hog));
  EXPECT_TRUE(on_big(k, nap)) << "IKS cannot split a pair's threads";
}

TEST_F(BaselinesTest, IksRejectsAsymmetricPlatform) {
  auto quad = arch::Platform::quad_heterogeneous();
  perf::PerfModel perf(quad);
  power::PowerModel power(quad, perf);
  Kernel k(quad, perf, power);
  k.set_balancer(std::make_unique<IksBalancer>());
  k.fork(cpu_bound("a"));
  EXPECT_THROW(k.run_for(milliseconds(20)), std::logic_error);
}

TEST_F(BaselinesTest, UtilAwarePacksLightLoadOntoLittles) {
  Kernel k(platform_, perf_, power_);
  k.set_balancer(std::make_unique<UtilAwareBalancer>());
  std::vector<ThreadId> tids;
  for (int i = 0; i < 4; ++i) {
    tids.push_back(k.fork_on(light("nap" + std::to_string(i)), i));  // bigs
  }
  k.run_for(milliseconds(400));
  for (ThreadId t : tids) {
    EXPECT_FALSE(on_big(k, t)) << "light tasks belong on LITTLE cores";
  }
}

TEST_F(BaselinesTest, UtilAwareSpillsHogsToBigs) {
  Kernel k(platform_, perf_, power_);
  k.set_balancer(std::make_unique<UtilAwareBalancer>());
  // 6 CPU hogs: 4 littles can hold at most 4 × 0.85 — with util 1.0 each,
  // only one fits per little; two must spill to bigs... all are util≈1 so
  // at most 4 stay little (one per core), 2 go big.
  std::vector<ThreadId> tids;
  for (int i = 0; i < 6; ++i) {
    tids.push_back(k.fork_on(cpu_bound("hog" + std::to_string(i)), 4));
  }
  k.run_for(milliseconds(400));
  int big_count = 0;
  for (ThreadId t : tids) {
    if (on_big(k, t)) ++big_count;
  }
  EXPECT_GE(big_count, 2);
  EXPECT_LE(big_count, 3);
}

TEST_F(BaselinesTest, UtilAwareBeatsIksOnMixedLoad) {
  // IKS drags light pair-mates onto big cores; utilization-aware packing
  // keeps them on littles → better energy efficiency on a mixed load.
  auto run = [&](std::unique_ptr<LoadBalancer> bal) {
    Kernel k(platform_, perf_, power_);
    k.set_balancer(std::move(bal));
    for (int i = 0; i < 2; ++i) k.fork(cpu_bound("hog" + std::to_string(i)));
    for (int i = 0; i < 6; ++i) k.fork(light("nap" + std::to_string(i)));
    k.run_for(milliseconds(500));
    return static_cast<double>(k.total_instructions()) /
           k.energy().total_joules();
  };
  const double iks = run(std::make_unique<IksBalancer>());
  const double utilaware = run(std::make_unique<UtilAwareBalancer>());
  EXPECT_GT(utilaware, iks);
}

}  // namespace
}  // namespace sb::os
