#include "os/kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "arch/platform.h"
#include "perf/perf_model.h"
#include "power/power_model.h"
#include "workload/benchmarks.h"

namespace sb::os {
namespace {

workload::ThreadBehavior cpu_bound(const std::string& name,
                                   std::uint64_t total = 0, int nice = 0) {
  workload::ThreadBehavior tb;
  tb.name = name;
  workload::WorkloadProfile p;
  p.name = name + ".phase";
  tb.phases.push_back({p, 50'000'000});
  tb.total_instructions = total;
  tb.nice = nice;
  return tb;
}

workload::ThreadBehavior interactive(const std::string& name,
                                     std::uint64_t burst, TimeNs sleep) {
  workload::ThreadBehavior tb = cpu_bound(name);
  tb.burst_instructions = burst;
  tb.sleep_mean_ns = sleep;
  return tb;
}

class KernelTest : public ::testing::Test {
 protected:
  explicit KernelTest(arch::Platform platform =
                          arch::Platform::homogeneous(arch::medium_core(), 2))
      : platform_(std::move(platform)),
        perf_(platform_),
        power_(platform_, perf_) {}

  Kernel make_kernel(KernelConfig cfg = KernelConfig()) {
    return Kernel(platform_, perf_, power_, cfg);
  }

  arch::Platform platform_;
  perf::PerfModel perf_;
  power::PowerModel power_;
};

TEST_F(KernelTest, ForkPlacesRoundRobin) {
  Kernel k = make_kernel();
  const ThreadId a = k.fork(cpu_bound("a"));
  const ThreadId b = k.fork(cpu_bound("b"));
  const ThreadId c = k.fork(cpu_bound("c"));
  EXPECT_EQ(k.task(a).cpu, 0);
  EXPECT_EQ(k.task(b).cpu, 1);
  EXPECT_EQ(k.task(c).cpu, 0);
}

TEST_F(KernelTest, ForkOnSpecificCore) {
  Kernel k = make_kernel();
  const ThreadId a = k.fork_on(cpu_bound("a"), 1);
  EXPECT_EQ(k.task(a).cpu, 1);
  EXPECT_THROW(k.fork_on(cpu_bound("b"), 5), std::out_of_range);
}

TEST_F(KernelTest, RunAdvancesTimeAndRetiresInstructions) {
  Kernel k = make_kernel();
  k.fork(cpu_bound("a"));
  k.run_for(milliseconds(50));
  EXPECT_EQ(k.now(), milliseconds(50));
  EXPECT_GT(k.total_instructions(), 10'000'000u);
  EXPECT_GT(k.context_switches(), 0u);
}

TEST_F(KernelTest, TimeCannotGoBackwards) {
  Kernel k = make_kernel();
  k.run_until(milliseconds(10));
  EXPECT_THROW(k.run_until(milliseconds(5)), std::invalid_argument);
}

TEST_F(KernelTest, CfsFairnessEqualWeights) {
  Kernel k = make_kernel();
  // Three identical threads on one core (core 1 left empty via fork_on).
  const ThreadId a = k.fork_on(cpu_bound("a"), 0);
  const ThreadId b = k.fork_on(cpu_bound("b"), 0);
  const ThreadId c = k.fork_on(cpu_bound("c"), 0);
  k.run_for(milliseconds(300));
  const double ra = static_cast<double>(k.task(a).lifetime_runtime);
  const double rb = static_cast<double>(k.task(b).lifetime_runtime);
  const double rc = static_cast<double>(k.task(c).lifetime_runtime);
  EXPECT_NEAR(ra / rb, 1.0, 0.05);
  EXPECT_NEAR(rb / rc, 1.0, 0.05);
  // And the core's time is fully accounted to them.
  EXPECT_NEAR(ra + rb + rc, static_cast<double>(milliseconds(300)),
              static_cast<double>(milliseconds(3)));
}

TEST_F(KernelTest, CfsWeightProportionality) {
  Kernel k = make_kernel();
  const ThreadId hi = k.fork_on(cpu_bound("hi", 0, -5), 0);  // weight 3121
  const ThreadId lo = k.fork_on(cpu_bound("lo", 0, 5), 0);   // weight 335
  k.run_for(milliseconds(400));
  const double ratio = static_cast<double>(k.task(hi).lifetime_runtime) /
                       static_cast<double>(k.task(lo).lifetime_runtime);
  EXPECT_NEAR(ratio, 3121.0 / 335.0, 3121.0 / 335.0 * 0.15);
}

TEST_F(KernelTest, TaskExitsAfterTotalInstructions) {
  Kernel k = make_kernel();
  const ThreadId a = k.fork(cpu_bound("a", 5'000'000));
  k.run_for(milliseconds(100));
  EXPECT_EQ(k.task(a).state, TaskState::Exited);
  EXPECT_NEAR(static_cast<double>(k.task(a).lifetime_insts), 5e6, 2.0);
  EXPECT_LT(k.task(a).exited_at, milliseconds(100));
  EXPECT_TRUE(k.all_exited());
}

TEST_F(KernelTest, InteractiveThreadSleepsAndWakes) {
  Kernel k = make_kernel();
  const ThreadId a = k.fork(interactive("i", 1'000'000, milliseconds(5)));
  k.run_for(milliseconds(200));
  const Task& t = k.task(a);
  // It must have completed several bursts: runtime strictly between 10% and
  // 90% of wall time given the burst/sleep ratio.
  EXPECT_GT(t.lifetime_runtime, milliseconds(10));
  EXPECT_LT(t.lifetime_runtime, milliseconds(190));
  EXPECT_GT(t.lifetime_insts, 3'000'000u);
}

TEST_F(KernelTest, SleepingCoreChargesSleepPower) {
  Kernel k = make_kernel();
  k.fork_on(cpu_bound("a"), 0);  // core 1 never runs anything
  k.run_for(milliseconds(100));
  EXPECT_EQ(k.energy().sleep_time(1), milliseconds(100));
  EXPECT_EQ(k.energy().busy_time(1), 0);
  const double expected =
      power_.sleep_power_w(platform_.type_of(1)) * 0.1;
  EXPECT_NEAR(k.energy().sleep_joules(1), expected, expected * 1e-6);
}

TEST_F(KernelTest, TimeFullyAccountedPerCore) {
  Kernel k = make_kernel();
  k.fork(cpu_bound("a"));
  k.fork(interactive("b", 2'000'000, milliseconds(3)));
  k.run_for(milliseconds(250));
  for (CoreId c = 0; c < k.num_cores(); ++c) {
    const TimeNs accounted = k.energy().busy_time(c) +
                             k.energy().idle_time(c) +
                             k.energy().sleep_time(c);
    EXPECT_EQ(accounted, milliseconds(250)) << "core " << c;
  }
}

TEST_F(KernelTest, CountersAccumulatePerThread) {
  Kernel k = make_kernel();
  const ThreadId a = k.fork(cpu_bound("a"));
  k.run_for(milliseconds(60));
  const auto& c = k.task(a).epoch_counters;
  EXPECT_GT(c.inst_total, 0u);
  EXPECT_NEAR(c.imsh(), 0.25, 0.01);   // default profile mem_share
  EXPECT_NEAR(c.ibsh(), 0.15, 0.01);
  EXPECT_GT(c.cy_busy, 0u);
  EXPECT_GT(c.cy_idle, 0u);
}

TEST_F(KernelTest, DrainEpochSamplesResetsAccumulators) {
  Kernel k = make_kernel();
  const ThreadId a = k.fork(cpu_bound("a"));
  k.run_for(milliseconds(60));
  auto samples = k.drain_epoch_samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].tid, a);
  EXPECT_GT(samples[0].counters.inst_total, 0u);
  EXPECT_GT(samples[0].energy_j, 0.0);
  EXPECT_GT(samples[0].runtime, 0);
  EXPECT_TRUE(k.task(a).epoch_counters.empty());
  // Second drain right away is empty-ish.
  auto again = k.drain_epoch_samples();
  EXPECT_EQ(again[0].counters.inst_total, 0u);
}

TEST_F(KernelTest, MigrationMovesRunningTask) {
  Kernel k = make_kernel();
  const ThreadId a = k.fork_on(cpu_bound("a"), 0);
  k.run_for(milliseconds(10));
  EXPECT_EQ(k.task(a).cpu, 0);
  k.migrate(a, 1);
  EXPECT_EQ(k.task(a).cpu, 1);
  EXPECT_EQ(k.task(a).insts_since_migration, 0u);
  EXPECT_EQ(k.total_migrations(), 1u);
  k.run_for(milliseconds(10));
  EXPECT_GT(k.core_instructions(1), 0u);
}

TEST_F(KernelTest, MigrationToSameCoreIsNoop) {
  Kernel k = make_kernel();
  const ThreadId a = k.fork_on(cpu_bound("a"), 0);
  k.migrate(a, 0);
  EXPECT_EQ(k.total_migrations(), 0u);
}

TEST_F(KernelTest, MigrationRespectsAffinity) {
  Kernel k = make_kernel();
  const ThreadId a = k.fork_on(cpu_bound("a"), 0);
  std::bitset<kMaxCores> only0;
  only0.set(0);
  k.set_cpus_allowed(a, only0);
  EXPECT_THROW(k.migrate(a, 1), std::invalid_argument);
}

TEST_F(KernelTest, SetCpusAllowedKicksOffForbiddenCore) {
  Kernel k = make_kernel();
  const ThreadId a = k.fork_on(cpu_bound("a"), 0);
  k.run_for(milliseconds(5));
  std::bitset<kMaxCores> only1;
  only1.set(1);
  k.set_cpus_allowed(a, only1);
  EXPECT_EQ(k.task(a).cpu, 1);
  EXPECT_THROW(k.set_cpus_allowed(a, std::bitset<kMaxCores>()),
               std::invalid_argument);
}

TEST_F(KernelTest, SleepingTaskMigratesOnWake) {
  Kernel k = make_kernel();
  const ThreadId a = k.fork_on(interactive("i", 1'000'000, milliseconds(20)), 0);
  // Run until it sleeps.
  k.run_for(milliseconds(10));
  ASSERT_EQ(k.task(a).state, TaskState::Sleeping);
  k.migrate(a, 1);
  EXPECT_EQ(k.task(a).cpu, 1);
  k.run_for(milliseconds(30));
  EXPECT_GT(k.core_instructions(1), 0u);
}

TEST_F(KernelTest, PeltUtilReflectsDutyCycle) {
  Kernel k = make_kernel();
  const ThreadId busy = k.fork_on(cpu_bound("busy"), 0);
  const ThreadId idle =
      k.fork_on(interactive("idle", 500'000, milliseconds(20)), 1);
  k.run_for(milliseconds(300));
  EXPECT_GT(k.task_util(busy), 0.9);
  EXPECT_LT(k.task_util(idle), 0.5);
}

TEST_F(KernelTest, BalancerFiresOnInterval) {
  class CountingBalancer final : public LoadBalancer {
   public:
    TimeNs interval() const override { return milliseconds(10); }
    void on_balance(Kernel&, TimeNs) override { ++count; }
    std::string name() const override { return "counting"; }
    int count = 0;
  };
  Kernel k = make_kernel();
  auto bal = std::make_unique<CountingBalancer>();
  auto* p = bal.get();
  k.set_balancer(std::move(bal));
  k.fork(cpu_bound("a"));
  k.run_for(milliseconds(100));
  EXPECT_GE(p->count, 9);
  EXPECT_LE(p->count, 11);
  EXPECT_EQ(k.balance_passes(), static_cast<std::uint64_t>(p->count));
}

TEST_F(KernelTest, DeterministicAcrossRuns) {
  auto run_once = [this] {
    Kernel k = make_kernel();
    k.fork(cpu_bound("a"));
    k.fork(interactive("b", 1'000'000, milliseconds(4)));
    k.run_for(milliseconds(200));
    return std::make_pair(k.total_instructions(), k.energy().total_joules());
  };
  const auto r1 = run_once();
  const auto r2 = run_once();
  EXPECT_EQ(r1.first, r2.first);
  EXPECT_DOUBLE_EQ(r1.second, r2.second);
}

TEST_F(KernelTest, BadIdsThrow) {
  Kernel k = make_kernel();
  EXPECT_THROW(k.task(0), std::out_of_range);
  EXPECT_THROW(k.migrate(0, 0), std::out_of_range);
  k.fork(cpu_bound("a"));
  EXPECT_THROW(k.migrate(0, 9), std::out_of_range);
  EXPECT_THROW(k.core_load(5), std::out_of_range);
}

class HeteroKernelTest : public KernelTest {
 protected:
  HeteroKernelTest() : KernelTest(arch::Platform::quad_heterogeneous()) {}
};

TEST_F(HeteroKernelTest, StrongerCoreRetiresMoreInstructions) {
  Kernel k = make_kernel();
  const ThreadId on_huge = k.fork_on(cpu_bound("h"), 0);
  const ThreadId on_small = k.fork_on(cpu_bound("s"), 3);
  k.run_for(milliseconds(100));
  EXPECT_GT(k.task(on_huge).lifetime_insts,
            3 * k.task(on_small).lifetime_insts);
}

TEST_F(HeteroKernelTest, WarmupSlowsFreshMigrant) {
  KernelConfig cfg;
  cfg.warmup = arch::CacheWarmupModel(4.0, 5'000'000);
  Kernel k = make_kernel(cfg);
  const ThreadId a = k.fork_on(cpu_bound("a"), 2);
  k.run_for(milliseconds(50));
  const auto before = k.task(a).lifetime_insts;
  k.migrate(a, 1);
  k.run_for(milliseconds(10));
  const auto after_migration = k.task(a).lifetime_insts - before;

  // Reference: same 10 ms on core 1 when warm (measured separately).
  Kernel k2 = make_kernel(cfg);
  const ThreadId b = k2.fork_on(cpu_bound("a"), 1);
  k2.run_for(milliseconds(50));
  const auto warm_before = k2.task(b).lifetime_insts;
  k2.run_for(milliseconds(10));
  const auto warm_delta = k2.task(b).lifetime_insts - warm_before;

  EXPECT_LT(after_migration, warm_delta);
}

TEST_F(HeteroKernelTest, EpochSampleWarmFlag) {
  KernelConfig cfg;
  cfg.warmup = arch::CacheWarmupModel(3.0, 50'000'000);
  Kernel k = make_kernel(cfg);
  const ThreadId a = k.fork_on(cpu_bound("a"), 3);  // Small: slow to warm
  k.run_for(milliseconds(5));
  k.migrate(a, 3 /*same*/);
  k.migrate(a, 2);
  k.run_for(milliseconds(5));
  const auto samples = k.drain_epoch_samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_FALSE(samples[0].warm);
}

TEST_F(KernelTest, SchedulingLatencyTracked) {
  Kernel k = make_kernel();
  // A solo thread never waits; three sharing a core wait for slices.
  const ThreadId solo = k.fork_on(cpu_bound("solo"), 1);
  const ThreadId shared1 = k.fork_on(cpu_bound("s1"), 0);
  const ThreadId shared2 = k.fork_on(cpu_bound("s2"), 0);
  const ThreadId shared3 = k.fork_on(cpu_bound("s3"), 0);
  k.run_for(milliseconds(200));
  EXPECT_EQ(k.task(solo).total_wait, 0);
  EXPECT_GT(k.task(shared1).total_wait, milliseconds(10));
  EXPECT_GT(k.task(shared2).max_wait, microseconds(500));
  EXPECT_GT(k.task(shared3).dispatches, 5u);
  // With 3 equal threads, each waits roughly 2/3 of the time.
  const double frac = static_cast<double>(k.task(shared1).total_wait) /
                      static_cast<double>(milliseconds(200));
  EXPECT_NEAR(frac, 2.0 / 3.0, 0.1);
}

TEST_F(KernelTest, FirstDispatchedAtStampedOnceAtFirstRun) {
  Kernel k = make_kernel();
  k.fork_on(cpu_bound("busy"), 0);
  k.run_for(milliseconds(30));
  // Forked mid-run onto a contended core: the task is runnable at 30 ms
  // and first executes once the core next schedules it.
  const ThreadId late = k.fork_on(cpu_bound("late"), 0);
  EXPECT_EQ(k.task(late).first_dispatched_at, kTimeNever);
  k.run_for(milliseconds(30));
  const TimeNs first = k.task(late).first_dispatched_at;
  ASSERT_NE(first, kTimeNever);
  EXPECT_GE(first, k.task(late).arrived_at);
  EXPECT_LT(first, k.now());
  // The stamp is the *first* dispatch: later slices must not move it.
  k.run_for(milliseconds(30));
  EXPECT_GT(k.task(late).dispatches, 1u);
  EXPECT_EQ(k.task(late).first_dispatched_at, first);
}

TEST_F(HeteroKernelTest, SetNiceReweights) {
  Kernel k = make_kernel();
  const ThreadId a = k.fork_on(cpu_bound("a"), 0);
  const ThreadId b = k.fork_on(cpu_bound("b"), 0);
  k.set_nice(a, -10);
  k.run_for(milliseconds(200));
  EXPECT_GT(k.task(a).lifetime_runtime, 3 * k.task(b).lifetime_runtime);
}

}  // namespace
}  // namespace sb::os
