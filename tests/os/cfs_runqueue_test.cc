#include "os/cfs_runqueue.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sb::os {
namespace {

TEST(CfsRunqueue, EmptyBehaviour) {
  CfsRunqueue rq;
  EXPECT_TRUE(rq.empty());
  EXPECT_EQ(rq.size(), 0u);
  EXPECT_EQ(rq.pop_leftmost(), kInvalidThread);
  EXPECT_EQ(rq.leftmost(), kInvalidThread);
  EXPECT_THROW(rq.leftmost_vruntime(), std::logic_error);
  EXPECT_EQ(rq.total_weight(), 0u);
}

TEST(CfsRunqueue, PopsInVruntimeOrder) {
  CfsRunqueue rq;
  rq.enqueue(1, 30.0, 1024);
  rq.enqueue(2, 10.0, 1024);
  rq.enqueue(3, 20.0, 1024);
  EXPECT_EQ(rq.pop_leftmost(), 2);
  EXPECT_EQ(rq.pop_leftmost(), 3);
  EXPECT_EQ(rq.pop_leftmost(), 1);
}

TEST(CfsRunqueue, TieBrokenByTid) {
  CfsRunqueue rq;
  rq.enqueue(7, 5.0, 1024);
  rq.enqueue(3, 5.0, 1024);
  EXPECT_EQ(rq.pop_leftmost(), 3);
  EXPECT_EQ(rq.pop_leftmost(), 7);
}

TEST(CfsRunqueue, WeightsTracked) {
  CfsRunqueue rq;
  rq.enqueue(1, 0.0, 1024);
  rq.enqueue(2, 1.0, 335);
  EXPECT_EQ(rq.total_weight(), 1359u);
  rq.pop_leftmost();
  EXPECT_EQ(rq.total_weight(), 335u);
  rq.remove(2, 1.0);
  EXPECT_EQ(rq.total_weight(), 0u);
}

TEST(CfsRunqueue, RemoveSpecific) {
  CfsRunqueue rq;
  rq.enqueue(1, 5.0, 1024);
  rq.enqueue(2, 6.0, 1024);
  EXPECT_TRUE(rq.remove(1, 5.0));
  EXPECT_FALSE(rq.remove(1, 5.0));          // already gone
  EXPECT_FALSE(rq.remove(2, 999.0));        // wrong key
  EXPECT_EQ(rq.size(), 1u);
}

TEST(CfsRunqueue, DuplicateEnqueueThrows) {
  CfsRunqueue rq;
  rq.enqueue(1, 5.0, 1024);
  EXPECT_THROW(rq.enqueue(1, 5.0, 1024), std::logic_error);
}

TEST(CfsRunqueue, MinVruntimeMonotone) {
  CfsRunqueue rq;
  rq.enqueue(1, 10.0, 1024);
  rq.pop_leftmost();
  EXPECT_DOUBLE_EQ(rq.min_vruntime(), 10.0);
  rq.enqueue(2, 5.0, 1024);  // earlier arrival cannot lower the floor
  rq.pop_leftmost();
  EXPECT_DOUBLE_EQ(rq.min_vruntime(), 10.0);
  rq.enqueue(3, 50.0, 1024);
  rq.pop_leftmost();
  EXPECT_DOUBLE_EQ(rq.min_vruntime(), 50.0);
}

TEST(CfsRunqueue, QueuedSnapshotOrdered) {
  CfsRunqueue rq;
  rq.enqueue(4, 3.0, 1024);
  rq.enqueue(9, 1.0, 1024);
  EXPECT_EQ(rq.queued(), (std::vector<ThreadId>{9, 4}));
}

TEST(CfsRunqueue, ManyEntriesStressOrdering) {
  CfsRunqueue rq;
  for (int i = 0; i < 500; ++i) {
    rq.enqueue(i, static_cast<double>((i * 7919) % 1000), 1024);
  }
  double prev = -1;
  while (!rq.empty()) {
    const double v = rq.leftmost_vruntime();
    EXPECT_GE(v, prev);
    prev = v;
    rq.pop_leftmost();
  }
}

}  // namespace
}  // namespace sb::os
