#include "os/dvfs_governor.h"

#include <gtest/gtest.h>

#include <memory>

#include "arch/platform.h"
#include "os/kernel.h"
#include "perf/perf_model.h"
#include "power/power_model.h"

namespace sb::os {
namespace {

workload::ThreadBehavior cpu_bound(const std::string& name) {
  workload::ThreadBehavior tb;
  tb.name = name;
  workload::WorkloadProfile p;
  tb.phases.push_back({p, 50'000'000});
  return tb;
}

workload::ThreadBehavior sleepy(const std::string& name) {
  auto tb = cpu_bound(name);
  tb.burst_instructions = 300'000;
  tb.sleep_mean_ns = milliseconds(10);
  return tb;
}

class DvfsTest : public ::testing::Test {
 protected:
  DvfsTest()
      : platform_(arch::Platform::homogeneous(arch::big_core(), 2)),
        perf_(platform_),
        power_(platform_, perf_) {}

  Kernel make_kernel(bool dvfs = true) {
    KernelConfig cfg;
    cfg.enable_dvfs = dvfs;
    return Kernel(platform_, perf_, power_, cfg);
  }

  arch::Platform platform_;
  perf::PerfModel perf_;
  power::PowerModel power_;
};

TEST_F(DvfsTest, BootsAtNominalPoint) {
  Kernel k = make_kernel();
  EXPECT_EQ(k.core_opp_index(0), k.opp_table(0).size() - 1);
  EXPECT_DOUBLE_EQ(k.core_opp(0).freq_mhz, 1500);
}

TEST_F(DvfsTest, DisabledKernelHasSinglePointTable) {
  Kernel k = make_kernel(false);
  EXPECT_EQ(k.opp_table(0).size(), 1u);
  EXPECT_THROW(k.set_governor(std::make_unique<OndemandGovernor>()),
               std::logic_error);
}

TEST_F(DvfsTest, LowerFrequencyRetiresFewerInstructions) {
  Kernel fast = make_kernel();
  Kernel slow = make_kernel();
  fast.fork_on(cpu_bound("a"), 0);
  slow.fork_on(cpu_bound("a"), 0);
  slow.set_core_opp(0, 0);  // 600 MHz vs 1500 MHz
  fast.run_for(milliseconds(100));
  slow.run_for(milliseconds(100));
  const double ratio = static_cast<double>(slow.total_instructions()) /
                       static_cast<double>(fast.total_instructions());
  // IPC rises slightly at low clock (fewer memory cycles), so the ratio is
  // a bit above the raw 0.4 frequency ratio.
  EXPECT_GT(ratio, 0.38);
  EXPECT_LT(ratio, 0.65);
}

TEST_F(DvfsTest, LowerPointBurnsLessEnergyPerSecond) {
  Kernel fast = make_kernel();
  Kernel slow = make_kernel();
  fast.fork_on(cpu_bound("a"), 0);
  slow.fork_on(cpu_bound("a"), 0);
  slow.set_core_opp(0, 0);
  fast.run_for(milliseconds(100));
  slow.run_for(milliseconds(100));
  EXPECT_LT(slow.energy().total_joules(0), 0.5 * fast.energy().total_joules(0));
}

TEST_F(DvfsTest, SetOppValidation) {
  Kernel k = make_kernel();
  EXPECT_THROW(k.set_core_opp(0, 99), std::out_of_range);
  const auto before = k.dvfs_transitions();
  k.set_core_opp(0, k.core_opp_index(0));  // same point: no transition
  EXPECT_EQ(k.dvfs_transitions(), before);
  k.set_core_opp(0, 0);
  EXPECT_EQ(k.dvfs_transitions(), before + 1);
}

TEST_F(DvfsTest, MidRunTransitionKeepsAccountingExact) {
  Kernel k = make_kernel();
  k.fork_on(cpu_bound("a"), 0);
  k.run_for(milliseconds(50));
  k.set_core_opp(0, 1);
  k.run_for(milliseconds(50));
  // Time is still fully accounted on both cores.
  for (CoreId c = 0; c < k.num_cores(); ++c) {
    EXPECT_EQ(k.energy().busy_time(c) + k.energy().idle_time(c) +
                  k.energy().sleep_time(c),
              milliseconds(100));
  }
}

TEST_F(DvfsTest, OndemandRaisesUnderLoadAndLowersWhenIdle) {
  Kernel k = make_kernel();
  auto gov = std::make_unique<OndemandGovernor>();
  auto* gp = gov.get();
  k.set_governor(std::move(gov));
  // Start both cores at the lowest point; core 0 gets a CPU hog, core 1 a
  // mostly-sleeping thread.
  k.set_core_opp(0, 0);
  k.set_core_opp(1, 0);
  k.fork_on(cpu_bound("hog"), 0);
  k.fork_on(sleepy("nap"), 1);
  k.run_for(milliseconds(400));
  EXPECT_EQ(k.core_opp_index(0), k.opp_table(0).size() - 1)
      << "saturated core must boost to max";
  EXPECT_EQ(k.core_opp_index(1), 0u) << "idle core must settle at min";
  EXPECT_GT(gp->transitions(), 0u);
}

TEST_F(DvfsTest, PerformanceAndPowersaveGovernors) {
  Kernel k = make_kernel();
  k.set_governor(std::make_unique<PowersaveGovernor>());
  k.fork_on(cpu_bound("a"), 0);
  k.run_for(milliseconds(200));
  EXPECT_EQ(k.core_opp_index(0), 0u);

  Kernel k2 = make_kernel();
  k2.set_core_opp(0, 0);
  k2.set_governor(std::make_unique<PerformanceGovernor>());
  k2.fork_on(cpu_bound("a"), 0);
  k2.run_for(milliseconds(200));
  EXPECT_EQ(k2.core_opp_index(0), k2.opp_table(0).size() - 1);
}

TEST_F(DvfsTest, OndemandImprovesEfficiencyForDutyCycledLoad) {
  // A light duty-cycled load wastes energy at nominal V/f; ondemand should
  // cut energy substantially at equal (sleep-bounded) work.
  auto run = [&](bool ondemand) {
    Kernel k = make_kernel();
    if (ondemand) k.set_governor(std::make_unique<OndemandGovernor>());
    k.fork_on(sleepy("nap"), 0);
    k.run_for(milliseconds(500));
    return std::pair(k.total_instructions(), k.energy().total_joules());
  };
  const auto fixed = run(false);
  const auto scaled = run(true);
  const double eff_fixed =
      static_cast<double>(fixed.first) / fixed.second;
  const double eff_scaled =
      static_cast<double>(scaled.first) / scaled.second;
  EXPECT_GT(eff_scaled, 1.1 * eff_fixed);
}

}  // namespace
}  // namespace sb::os
