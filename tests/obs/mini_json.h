// Tiny recursive-descent JSON parser for test assertions only: just enough
// to round-trip the observability exports (Chrome traces, metrics blocks,
// bench_json documents). Objects are std::map, so key *ordering* claims are
// asserted on the raw emitted string, not through this parser.
#pragma once

#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace sb::testjson {

struct Value {
  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v;

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v); }
  bool is_object() const { return std::holds_alternative<Object>(v); }
  bool is_array() const { return std::holds_alternative<Array>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }

  double num() const { return std::get<double>(v); }
  bool boolean() const { return std::get<bool>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
  const Array& arr() const { return std::get<Array>(v); }
  const Object& obj() const { return std::get<Object>(v); }

  bool contains(const std::string& key) const {
    return is_object() && obj().count(key) > 0;
  }
  const Value& at(const std::string& key) const {
    const auto& o = obj();
    const auto it = o.find(key);
    if (it == o.end()) throw std::out_of_range("no key '" + key + "'");
    return it->second;
  }
  const Value& at(std::size_t i) const { return arr().at(i); }
  std::size_t size() const {
    return is_array() ? arr().size() : obj().size();
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse() {
    Value v = value();
    ws();
    if (pos_ != s_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("mini_json: " + why + " at offset " +
                                std::to_string(pos_));
  }
  void ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(const std::string& lit) {
    if (s_.compare(pos_, lit.size(), lit) == 0) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value value() {
    ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Value{string()};
    if (consume("null")) return Value{nullptr};
    if (consume("true")) return Value{true};
    if (consume("false")) return Value{false};
    return number();
  }

  Value number() {
    char* end = nullptr;
    const double d = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) fail("bad number");
    pos_ = static_cast<std::size_t>(end - s_.c_str());
    return Value{d};
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            const int cp = static_cast<int>(
                std::strtol(s_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            out += cp < 0x80 ? static_cast<char>(cp) : '?';
            break;
          }
          default:
            fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Value array() {
    expect('[');
    Value::Array out;
    ws();
    if (peek() == ']') {
      ++pos_;
      return Value{out};
    }
    while (true) {
      out.push_back(value());
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value{out};
    }
  }

  Value object() {
    expect('{');
    Value::Object out;
    ws();
    if (peek() == '}') {
      ++pos_;
      return Value{out};
    }
    while (true) {
      ws();
      std::string key = string();
      ws();
      expect(':');
      out[key] = value();
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value{out};
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline Value parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace sb::testjson
