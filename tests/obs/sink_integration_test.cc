// End-to-end observability: a SmartBalance simulation with the sink enabled
// produces populated metrics and a well-formed trace; with the (default)
// sink disabled nothing changes; and the merged multi-run export is a
// deterministic function of the per-run traces regardless of --jobs.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "mini_json.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/runner.h"
#include "sim/simulation.h"

namespace sb::sim {
namespace {

SimulationConfig base_cfg() {
  SimulationConfig cfg;
  cfg.duration = milliseconds(240);
  cfg.seed = 1234;
  return cfg;
}

SimulationResult run_smart(SimulationConfig cfg) {
  const auto platform = arch::Platform::quad_heterogeneous();
  Simulation s(platform, cfg);
  s.set_balancer(smartbalance_factory()(s));
  s.add_benchmark("IMB_HTHI", 2);
  return s.run();
}

TEST(SinkIntegration, DisabledByDefaultLeavesResultAndReportClean) {
  const SimulationResult r = run_smart(base_cfg());
  EXPECT_EQ(r.obs, nullptr);
  EXPECT_EQ(to_json(r).find("\"metrics\""), std::string::npos);
}

TEST(SinkIntegration, MetricsCoverTheBalancingLoop) {
  SimulationConfig cfg = base_cfg();
  cfg.obs.metrics = true;
  const SimulationResult r = run_smart(cfg);
  ASSERT_NE(r.obs, nullptr);
  EXPECT_TRUE(r.obs->metrics_enabled);
  EXPECT_FALSE(r.obs->trace_enabled);
  const auto& m = r.obs->metrics;
  ASSERT_GT(m.counters().count("epoch.passes"), 0u);
  EXPECT_GT(m.counters().at("epoch.passes").value, 0u);
  EXPECT_GT(m.counters().at("sa.calls").value, 0u);
  EXPECT_GT(m.counters().at("sa.iterations").value, 0u);
  EXPECT_GT(m.counters().at("balance.migrations").value, 0u);
  EXPECT_GT(m.histograms().at("epoch.sense_ns").count(), 0u);
  EXPECT_GT(m.histograms().at("epoch.predict_ns").count(), 0u);
  EXPECT_GT(m.histograms().at("epoch.optimize_ns").count(), 0u);

  // The metrics block rides inside the JSON report and parses back.
  const auto doc = testjson::parse(to_json(r));
  ASSERT_TRUE(doc.contains("metrics"));
  EXPECT_EQ(doc.at("metrics").at("counters").at("epoch.passes").num(),
            static_cast<double>(m.counters().at("epoch.passes").value));
}

TEST(SinkIntegration, TraceHasEpochAnatomy) {
  SimulationConfig cfg = base_cfg();
  cfg.obs.trace = true;
  const SimulationResult r = run_smart(cfg);
  ASSERT_NE(r.obs, nullptr);
  EXPECT_TRUE(r.obs->trace_enabled);
  std::ostringstream os;
  obs::write_chrome_trace(os, {r.obs.get()});
  const auto doc = testjson::parse(os.str());
  int sense = 0, predict = 0, balance = 0, migration = 0;
  for (const auto& ev : doc.at("traceEvents").arr()) {
    const auto& name = ev.at("name").str();
    const auto& ph = ev.at("ph").str();
    if (ph == "X" && name == "sense") ++sense;
    if (ph == "X" && name == "predict") ++predict;
    if (ph == "X" && name == "balance") ++balance;
    if (ph == "i" && name == "migration") ++migration;
  }
  EXPECT_GT(sense, 0);
  EXPECT_GT(predict, 0);
  EXPECT_GT(balance, 0);
  EXPECT_GE(migration, 1);
}

TEST(SinkIntegration, ObservedRunMatchesGoldenPathResults) {
  // Observability is read-only: enabling it must not change a single
  // simulated number (it draws no RNG, feeds nothing back).
  const SimulationResult plain = run_smart(base_cfg());
  SimulationConfig cfg = base_cfg();
  cfg.obs.metrics = true;
  cfg.obs.trace = true;
  const SimulationResult observed = run_smart(cfg);
  EXPECT_EQ(plain.instructions, observed.instructions);
  EXPECT_EQ(plain.migrations, observed.migrations);
  EXPECT_DOUBLE_EQ(plain.ips_per_watt, observed.ips_per_watt);
  EXPECT_DOUBLE_EQ(plain.energy_j, observed.energy_j);
}

// --------------------------------------------------------------------------
// Merged exports are --jobs invariant
// --------------------------------------------------------------------------

std::vector<ExperimentSpec> sweep_specs() {
  SimulationConfig cfg = base_cfg();
  cfg.obs.metrics = true;
  cfg.obs.trace = true;
  std::vector<ExperimentSpec> specs;
  for (const std::string bench : {"IMB_HTHI", "IMB_MTMI", "IMB_LTLI"}) {
    for (const char* policy : {"vanilla", "smartbalance"}) {
      ExperimentSpec spec;
      spec.platform = arch::Platform::quad_heterogeneous();
      spec.cfg = cfg;
      spec.workload = [bench](Simulation& s) { s.add_benchmark(bench, 2); };
      spec.policy = policy == std::string("vanilla") ? vanilla_factory()
                                                     : smartbalance_factory();
      spec.label = bench;
      spec.policy_name = policy;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

std::string merged_trace(const BatchResult& batch) {
  std::vector<const obs::RunObs*> runs;
  for (const auto& r : batch.runs) {
    if (r.result.obs) runs.push_back(r.result.obs.get());
  }
  std::ostringstream os;
  obs::write_chrome_trace(os, runs);
  return os.str();
}

// Everything in a trace except host wall-clock time: per-event identity,
// ordering, pid assignment, and simulated arguments, plus the summary
// block. Span `dur` (and the ts offsets derived from it within an epoch)
// measure how long *this host* took and legitimately differ between
// executions, so they are projected out.
std::string trace_shape(const std::string& json) {
  const auto doc = testjson::parse(json);
  std::ostringstream os;
  for (const auto& ev : doc.at("traceEvents").arr()) {
    os << ev.at("pid").num() << '|' << ev.at("name").str() << '|'
       << ev.at("ph").str();
    if (ev.contains("cat")) os << '|' << ev.at("cat").str();
    if (ev.contains("args")) {
      for (const auto& [key, val] : ev.at("args").obj()) {
        os << '|' << key << '=';
        if (val.is_string()) {
          os << val.str();
        } else {
          os << val.num();
        }
      }
    }
    os << '\n';
  }
  const auto& sb = doc.at("smartbalance");
  os << "runs=" << sb.at("runs").num() << " events=" << sb.at("events").num()
     << " dropped=" << sb.at("dropped_events").num() << '\n';
  return os.str();
}

// Counters, gauges, and histogram sample counts are pure functions of the
// simulation; histogram *values* (epoch.*_ns, sa.host_ns) are host time.
std::string metrics_shape(const std::string& json) {
  const auto doc = testjson::parse(json);
  std::ostringstream os;
  for (const auto& [name, c] : doc.at("counters").obj()) {
    os << "c:" << name << '=' << c.num() << '\n';
  }
  for (const auto& [name, g] : doc.at("gauges").obj()) {
    os << "g:" << name << '=' << g.num() << '\n';
  }
  for (const auto& [name, h] : doc.at("histograms").obj()) {
    os << "h:" << name << ".count=" << h.at("count").num() << '\n';
  }
  return os.str();
}

TEST(SinkIntegration, MergedTraceAndMetricsAreJobsInvariant) {
  const auto specs = sweep_specs();

  ExperimentRunner::Config seq_cfg;
  seq_cfg.threads = 1;
  const BatchResult seq = ExperimentRunner(seq_cfg).run(specs);

  ExperimentRunner::Config par_cfg;
  par_cfg.threads = 8;
  const BatchResult par = ExperimentRunner(par_cfg).run(specs);

  for (const auto& r : seq.runs) ASSERT_TRUE(r.ok()) << r.error;
  for (const auto& r : par.runs) ASSERT_TRUE(r.ok()) << r.error;

  // Runs carry their submission index, so the merged export has the same
  // events, in the same order, with the same simulated arguments whether
  // one worker or eight produced it. (Byte identity is asserted in
  // ChromeTrace.OutputIsIndependentOfRunOrderPassedIn, where the per-run
  // snapshots — including host-clock durations — are held fixed.)
  EXPECT_EQ(trace_shape(merged_trace(seq)), trace_shape(merged_trace(par)));

  auto merged = [](const BatchResult& b) {
    std::vector<const obs::RunObs*> runs;
    for (const auto& r : b.runs) {
      if (r.result.obs) runs.push_back(r.result.obs.get());
    }
    return obs::merge_metrics(runs).to_json();
  };
  EXPECT_EQ(metrics_shape(merged(seq)), metrics_shape(merged(par)));

  // And the export itself is schema-shaped: one process per run.
  const auto doc = testjson::parse(merged_trace(par));
  EXPECT_EQ(doc.at("smartbalance").at("runs").num(),
            static_cast<double>(specs.size()));
}

}  // namespace
}  // namespace sb::sim
