// End-to-end tests for sharded hierarchical balancing riding the full
// simulator: --shards=1 is bit-identical to the unsharded golden path,
// sharded results are independent of both the intra-epoch worker count and
// the experiment-runner worker count, the shard accounting rides the JSON
// report, and the trace grows the shard.pass/shard.exchange anatomy that
// check_trace.py's nesting checks consume.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "core/shard.h"
#include "core/smart_balance.h"
#include "mini_json.h"
#include "obs/audit_writer.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/runner.h"
#include "sim/simulation.h"

namespace sb::sim {
namespace {

SimulationConfig base_cfg() {
  SimulationConfig cfg;
  cfg.duration = milliseconds(600);
  cfg.seed = 1234;
  return cfg;
}

SimulationResult run_smart(SimulationConfig cfg,
                           core::SmartBalanceConfig sc = {}) {
  const auto platform = arch::Platform::quad_heterogeneous();
  Simulation s(platform, cfg);
  s.set_balancer(smartbalance_factory(sc)(s));
  s.add_mix(5, 2);
  return s.run();
}

void expect_same_numbers(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_DOUBLE_EQ(a.ips_per_watt, b.ips_per_watt);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
}

TEST(ShardIntegration, OneShardIsBitIdenticalToUnshardedGoldenPath) {
  // shards=1 routes through the shard machinery (partition, sub-problem
  // extraction, merge) but must replay the unsharded annealing trajectory
  // exactly: seed stride × shard 0 = the pass seed, identity column map,
  // direct sub-result return. Any drift here would silently invalidate the
  // fig4a/fig4b/fig5/fig8 goldens' equivalence claim.
  const SimulationResult plain = run_smart(base_cfg());
  core::SmartBalanceConfig sc;
  sc.sharding = core::ShardingConfig::parse("1");
  const SimulationResult one = run_smart(base_cfg(), sc);
  expect_same_numbers(plain, one);
  EXPECT_EQ(one.shards, 1);
  EXPECT_GT(one.shard_passes, 0u);
}

TEST(ShardIntegration, OneShardAuditExportIsByteIdentical) {
  // Beyond the headline numbers: the full prediction-audit flight recorder
  // (every forecast, residual and verdict) must not differ by a byte.
  SimulationConfig cfg = base_cfg();
  cfg.obs.audit = true;
  const SimulationResult plain = run_smart(cfg);
  core::SmartBalanceConfig sc;
  sc.sharding = core::ShardingConfig::parse("1");
  const SimulationResult one = run_smart(cfg, sc);
  ASSERT_NE(plain.obs, nullptr);
  ASSERT_NE(one.obs, nullptr);
  auto dump = [](const SimulationResult& r) {
    std::ostringstream os;
    obs::write_audit(os, {r.obs.get()});
    return os.str();
  };
  EXPECT_EQ(dump(plain), dump(one));
}

TEST(ShardIntegration, ResultsIndependentOfIntraEpochWorkerCount) {
  // sharding.jobs picks how many workers anneal the shards of one epoch in
  // parallel; it must never leak into the simulated numbers.
  auto run = [](int jobs) {
    core::SmartBalanceConfig sc;
    sc.sharding.shards = 2;
    sc.sharding.jobs = jobs;
    return run_smart(base_cfg(), sc);
  };
  const SimulationResult seq = run(1);
  const SimulationResult par = run(8);
  expect_same_numbers(seq, par);
  EXPECT_EQ(seq.shard_passes, par.shard_passes);
  EXPECT_EQ(seq.shard_exchange_moves, par.shard_exchange_moves);
}

TEST(ShardIntegration, ShardAccountingRidesTheJsonReport) {
  core::SmartBalanceConfig sc;
  sc.sharding.shards = 2;
  const SimulationResult r = run_smart(base_cfg(), sc);
  EXPECT_EQ(r.shards, 2);
  EXPECT_GT(r.shard_passes, 0u);

  const auto doc = testjson::parse(to_json(r));
  ASSERT_TRUE(doc.contains("shards"));
  const auto& shards = doc.at("shards");
  EXPECT_EQ(shards.at("count").num(), 2.0);
  EXPECT_EQ(shards.at("passes").num(), static_cast<double>(r.shard_passes));
  EXPECT_EQ(shards.at("exchange_moves").num(),
            static_cast<double>(r.shard_exchange_moves));
  ASSERT_TRUE(shards.contains("avg_exchange_us"));

  // Sharding off: no block (the report stays byte-compatible with PR 6).
  const SimulationResult off = run_smart(base_cfg());
  EXPECT_EQ(to_json(off).find("\"shards\""), std::string::npos);
}

TEST(ShardIntegration, TraceGrowsShardAnatomy) {
  SimulationConfig cfg = base_cfg();
  cfg.obs.metrics = true;
  cfg.obs.trace = true;
  core::SmartBalanceConfig sc;
  sc.sharding.shards = 2;
  const SimulationResult r = run_smart(cfg, sc);
  ASSERT_NE(r.obs, nullptr);

  const auto& m = r.obs->metrics;
  ASSERT_GT(m.counters().count("shard.passes"), 0u);
  EXPECT_GT(m.counters().at("shard.passes").value, 0u);
  EXPECT_GT(m.histograms().at("shard.pass_ns").count(), 0u);
  // The unsharded optimizer never runs, so its counters never appear.
  EXPECT_EQ(m.counters().count("sa.calls"), 0u);

  std::ostringstream os;
  obs::write_chrome_trace(os, {r.obs.get()});
  const auto doc = testjson::parse(os.str());
  int shard_pass = 0, shard_exchange = 0;
  bool args_ok = true;
  for (const auto& ev : doc.at("traceEvents").arr()) {
    if (ev.at("ph").str() != "X") continue;
    const auto& name = ev.at("name").str();
    if (name == "shard.pass") {
      ++shard_pass;
      args_ok = args_ok && ev.contains("args") &&
                ev.at("args").contains("shard") &&
                ev.at("args").contains("worker") &&
                ev.at("args").contains("iterations");
    }
    if (name == "shard.exchange") ++shard_exchange;
  }
  EXPECT_GT(shard_pass, 0);
  EXPECT_GT(shard_exchange, 0);
  EXPECT_TRUE(args_ok) << "shard.pass spans must carry shard/worker/iterations";
}

TEST(ShardIntegration, ShardedBatchExportIsByteIdenticalAcrossRunnerJobs) {
  // The two worker pools compose: ExperimentRunner workers run whole sims
  // in parallel while each sim's sharded epochs fork-join internally; the
  // merged flight-recorder export must still be a pure function of the
  // specs. (The intra-epoch pool is pinned to jobs=2 here so the outer
  // sweep doesn't oversubscribe the host either way.)
  SimulationConfig cfg = base_cfg();
  cfg.duration = milliseconds(300);
  cfg.obs.audit = true;
  core::SmartBalanceConfig sc;
  sc.sharding = core::ShardingConfig::parse("2:2");

  std::vector<ExperimentSpec> specs;
  for (const std::string bench : {"IMB_HTHI", "IMB_MTMI", "bodytrack"}) {
    for (const int per : {2, 4}) {
      ExperimentSpec spec;
      spec.platform = arch::Platform::quad_heterogeneous();
      spec.cfg = cfg;
      spec.workload = [bench, per](Simulation& s) {
        s.add_benchmark(bench, per);
      };
      spec.policy = smartbalance_factory(sc);
      spec.label = bench + "/sharded/" + std::to_string(per);
      specs.push_back(std::move(spec));
    }
  }

  auto merged = [&](int threads) {
    ExperimentRunner::Config rc;
    rc.threads = threads;
    const BatchResult batch = ExperimentRunner(rc).run(specs);
    std::vector<const obs::RunObs*> runs;
    for (const auto& r : batch.runs) {
      EXPECT_TRUE(r.ok()) << r.error;
      if (r.result.obs) runs.push_back(r.result.obs.get());
    }
    std::ostringstream os;
    obs::write_audit(os, runs);
    return os.str();
  };

  const std::string seq = merged(1);
  const std::string par = merged(8);
  EXPECT_EQ(seq, par);
  EXPECT_NE(seq.find("#summary runs=6"), std::string::npos);
}

}  // namespace
}  // namespace sb::sim
