// TimeseriesRecorder + exporter tests: the `#sb-tsdb v1` contract the
// validators (tools/check_timeseries.py) and the dashboard (tools/sbtop)
// parse, plus the --obs-window grammar with its seeded fuzz harness (the
// same contract the FaultPlan fuzz enforces: parse() returns or throws
// std::invalid_argument, and every accepted spec round-trips through
// canonical()).
#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <typeinfo>
#include <vector>

#include "obs/trace.h"

namespace sb::obs {
namespace {

// --------------------------------------------------------------------------
// --obs-window grammar
// --------------------------------------------------------------------------

TEST(TimeseriesConfig, ParsesWindowAndCapacity) {
  const TimeseriesConfig a = TimeseriesConfig::parse("10");
  EXPECT_TRUE(a.enabled);
  EXPECT_EQ(a.window, milliseconds(10));
  EXPECT_EQ(a.capacity, std::size_t{1} << 16);  // default untouched

  const TimeseriesConfig b = TimeseriesConfig::parse("5:8192");
  EXPECT_EQ(b.window, milliseconds(5));
  EXPECT_EQ(b.capacity, 8192u);

  EXPECT_EQ(TimeseriesConfig::parse("1").window, milliseconds(1));
  EXPECT_EQ(TimeseriesConfig::parse("60000:64").capacity, 64u);
  EXPECT_EQ(TimeseriesConfig::parse("10:16777216").capacity,
            std::size_t{1} << 24);
}

TEST(TimeseriesConfig, RejectsBadSpecs) {
  for (const char* bad :
       {"", "0", "60001", "abc", "-5", "1.5", "10:", "10:63", "10:16777217",
        "10:8192:1", ":64", "10:abc", " 10", "10 "}) {
    EXPECT_THROW((void)TimeseriesConfig::parse(bad), std::invalid_argument)
        << "'" << bad << "'";
  }
}

TEST(TimeseriesConfig, CanonicalRoundTrips) {
  for (const char* spec : {"10", "5:8192", "1:64", "60000:16777216"}) {
    const TimeseriesConfig cfg = TimeseriesConfig::parse(spec);
    const TimeseriesConfig again = TimeseriesConfig::parse(cfg.canonical());
    EXPECT_EQ(again.window, cfg.window) << spec;
    EXPECT_EQ(again.capacity, cfg.capacity) << spec;
    EXPECT_EQ(again.canonical(), cfg.canonical()) << spec;
  }
}

// --------------------------------------------------------------------------
// Recorder: frames, ring overflow, snapshot order
// --------------------------------------------------------------------------

TimeseriesConfig small_config(std::size_t capacity) {
  TimeseriesConfig cfg;
  cfg.enabled = true;
  cfg.window = milliseconds(10);
  cfg.capacity = capacity;
  return cfg;
}

TEST(TimeseriesRecorder, InternIsIdempotent) {
  TimeseriesRecorder rec(small_config(16));
  const std::uint32_t a = rec.intern("je");
  const std::uint32_t b = rec.intern("watts");
  EXPECT_NE(a, b);
  EXPECT_EQ(rec.intern("je"), a);
  EXPECT_EQ(rec.names()[a], "je");
  EXPECT_EQ(rec.names()[b], "watts");
}

TEST(TimeseriesRecorder, FrameValueReturnsLatestInFrame) {
  TimeseriesRecorder rec(small_config(16));
  const std::uint32_t a = rec.intern("a");
  const std::uint32_t b = rec.intern("b");
  rec.begin_frame(1000);
  EXPECT_EQ(rec.frame_value(a, -1.0), -1.0);  // nothing recorded yet
  rec.record(a, 1.0);
  rec.record(a, 2.0);  // same signal twice: latest wins
  EXPECT_EQ(rec.frame_value(a, -1.0), 2.0);
  EXPECT_EQ(rec.frame_value(b, -1.0), -1.0);
  rec.begin_frame(2000);  // new frame clears the previous one
  EXPECT_EQ(rec.frame_value(a, -1.0), -1.0);
  EXPECT_EQ(rec.frame_t_ns(), 2000u);
}

TEST(TimeseriesRecorder, RingKeepsNewestAndCountsDropped) {
  TimeseriesRecorder rec(small_config(4));
  const std::uint32_t s = rec.intern("s");
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.begin_frame(i * 100);
    rec.record(s, static_cast<double>(i));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  EXPECT_EQ(rec.frames(), 10u);

  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.samples.size(), 4u);
  EXPECT_EQ(snap.dropped, 6u);
  EXPECT_EQ(snap.frames, 10u);
  EXPECT_EQ(snap.window, milliseconds(10));
  // Oldest -> newest: the last 4 of the 10 recorded samples, in order.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snap.samples[i].t_ns, (6 + i) * 100) << i;
    EXPECT_EQ(snap.samples[i].value, static_cast<double>(6 + i)) << i;
    EXPECT_EQ(snap.name_of(snap.samples[i].signal), "s");
  }
}

TEST(TimeseriesRecorder, CapacityClampedToAtLeastOne) {
  TimeseriesRecorder rec(small_config(0));
  const std::uint32_t s = rec.intern("s");
  rec.begin_frame(1);
  rec.record(s, 1.0);
  rec.record(s, 2.0);
  EXPECT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.dropped(), 1u);
  EXPECT_EQ(rec.snapshot().samples.front().value, 2.0);
}

TEST(TimeseriesRecorder, SnapshotBeforeOverflowPreservesRecordOrder) {
  TimeseriesRecorder rec(small_config(16));
  const std::uint32_t a = rec.intern("a");
  const std::uint32_t b = rec.intern("b");
  rec.begin_frame(10);
  rec.record(a, 1.0);
  rec.record(b, 2.0);
  rec.begin_frame(20);
  rec.record(a, 3.0);
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].t_ns, 10u);
  EXPECT_EQ(snap.name_of(snap.samples[0].signal), "a");
  EXPECT_EQ(snap.samples[1].value, 2.0);
  EXPECT_EQ(snap.samples[2].t_ns, 20u);
  EXPECT_EQ(snap.name_of(99), "?");  // out-of-table id is visible, not UB
}

// --------------------------------------------------------------------------
// `#sb-tsdb v1` exporters
// --------------------------------------------------------------------------

RunObs make_run(int index, const std::string& label) {
  TimeseriesRecorder rec(small_config(16));
  const std::uint32_t a = rec.intern("a");
  const std::uint32_t b = rec.intern("b");
  rec.begin_frame(10'000'000);
  rec.record(a, 1.5);
  rec.record(b, 2.0);
  rec.begin_frame(20'000'000);
  rec.record(a, 2.5);
  RunObs r;
  r.run = index;
  r.label = label;
  r.timeseries_enabled = true;
  r.timeseries = rec.snapshot();
  return r;
}

TEST(TimeseriesWriter, CsvMatchesTheDocumentedContract) {
  const RunObs r = make_run(0, "node");
  std::ostringstream os;
  write_timeseries(os, {&r});
  EXPECT_EQ(os.str(),
            "#sb-tsdb v1\n"
            "#columns sample t_ns,signal,value\n"
            "#run 0 node\n"
            "#meta 0 window_ns=10000000\n"
            "sample,10000000,a,1.5\n"
            "sample,10000000,b,2\n"
            "sample,20000000,a,2.5\n"
            "#counters 0 samples=3 frames=2 dropped=0\n"
            "#summary runs=1\n");
}

TEST(TimeseriesWriter, OrdersRunsByStampedIndexAndSkipsDisabled) {
  const RunObs r2 = make_run(2, "late");
  const RunObs r1 = make_run(1, "early");
  RunObs off;  // timeseries never enabled: skipped entirely
  off.run = 0;
  std::ostringstream os;
  write_timeseries(os, {&r2, nullptr, &off, &r1});
  const std::string out = os.str();
  const std::size_t early = out.find("#run 1 early");
  const std::size_t late = out.find("#run 2 late");
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(late, std::string::npos);
  EXPECT_LT(early, late);
  EXPECT_EQ(out.find("#run 0"), std::string::npos);
  EXPECT_NE(out.find("#summary runs=2\n"), std::string::npos);
}

TEST(TimeseriesWriter, JsonRendersSameDataWithNullForNonFinite) {
  TimeseriesRecorder rec(small_config(16));
  const std::uint32_t a = rec.intern("a");
  rec.begin_frame(5);
  rec.record(a, 1.25);
  rec.record(a, std::numeric_limits<double>::quiet_NaN());
  RunObs r;
  r.run = 0;
  r.label = "n";
  r.timeseries_enabled = true;
  r.timeseries = rec.snapshot();
  std::ostringstream os;
  write_timeseries_json(os, {&r});
  EXPECT_EQ(os.str(),
            "{\"schema\":\"sb-tsdb\",\"version\":1,\"runs\":["
            "{\"run\":0,\"label\":\"n\",\"window_ns\":10000000,"
            "\"frames\":1,\"dropped\":0,\"samples\":["
            "[5,\"a\",1.25],[5,\"a\",null]]}]}\n");
}

TEST(TimeseriesWriter, EmptyRunSetStillEmitsValidDocuments) {
  std::ostringstream csv, json;
  write_timeseries(csv, {});
  write_timeseries_json(json, {});
  EXPECT_EQ(csv.str(),
            "#sb-tsdb v1\n"
            "#columns sample t_ns,signal,value\n"
            "#summary runs=0\n");
  EXPECT_EQ(json.str(), "{\"schema\":\"sb-tsdb\",\"version\":1,\"runs\":[]}\n");
}

TEST(TimeseriesWriter, ColumnListHasOneSourceOfTruth) {
  EXPECT_STREQ(timeseries_sample_columns(), "t_ns,signal,value");
}

// --------------------------------------------------------------------------
// Prometheus snapshot
// --------------------------------------------------------------------------

TEST(PrometheusWriter, LabelsNodesAndRendersAllThreeKinds) {
  RunObs fleet;  // run 0: the fleet itself, no labels
  fleet.run = 0;
  fleet.metrics_enabled = true;
  fleet.metrics.counter("jobs.completed").add(3);
  RunObs node;  // run 1 -> node="0"
  node.run = 1;
  node.metrics_enabled = true;
  node.metrics.gauge("node.load").set(0.5);
  node.metrics.histogram("wake_ns").record(100);
  node.metrics.histogram("wake_ns").record(200);

  std::ostringstream os;
  write_prometheus(os, {&node, &fleet});  // out of order on purpose
  const std::string out = os.str();
  EXPECT_NE(out.find("# TYPE sb_jobs_completed counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("sb_jobs_completed 3\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE sb_node_load gauge\n"), std::string::npos);
  EXPECT_NE(out.find("sb_node_load{node=\"0\"} 0.5\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE sb_wake_ns summary\n"), std::string::npos);
  EXPECT_NE(out.find("sb_wake_ns{node=\"0\",quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(out.find("sb_wake_ns_sum{node=\"0\"} 300\n"), std::string::npos);
  EXPECT_NE(out.find("sb_wake_ns_count{node=\"0\"} 2\n"), std::string::npos);
}

// --------------------------------------------------------------------------
// Grammar fuzz: 10k seeded mutations (FaultPlan-fuzz contract)
// --------------------------------------------------------------------------

/// SplitMix64 mutation stream, independent of libc rand.
class Mutator {
 public:
  explicit Mutator(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  char random_char() {
    static const char kAlphabet[] =
        "0123456789.:,-+eE \twindowburncapacity<>=_janp99\0\x7f";
    return kAlphabet[below(sizeof(kAlphabet) - 1)];
  }

  std::string mutate(std::string s) {
    const int edits = 1 + static_cast<int>(below(4));
    for (int e = 0; e < edits; ++e) {
      switch (below(5)) {
        case 0:
          if (!s.empty()) s[below(s.size())] = random_char();
          break;
        case 1:
          s.insert(s.begin() +
                       static_cast<std::ptrdiff_t>(below(s.size() + 1)),
                   random_char());
          break;
        case 2:
          if (!s.empty()) s.erase(below(s.size()), 1);
          break;
        case 3:
          if (!s.empty()) s.resize(below(s.size()));
          break;
        case 4:
          if (!s.empty()) {
            const std::size_t at = below(s.size());
            s += s.substr(at, below(s.size() - at) + 1);
          }
          break;
      }
    }
    return s;
  }

 private:
  std::uint64_t state_;
};

/// parse() must return or throw std::invalid_argument; nothing else. An
/// accepted spec must round-trip through canonical().
void expect_contract(const std::string& input) {
  try {
    const TimeseriesConfig cfg = TimeseriesConfig::parse(input);
    const std::string canon = cfg.canonical();
    const TimeseriesConfig again = TimeseriesConfig::parse(canon);
    EXPECT_EQ(again.canonical(), canon)
        << "unstable round-trip for input '" << input << "'";
    EXPECT_EQ(again.window, cfg.window);
    EXPECT_EQ(again.capacity, cfg.capacity);
  } catch (const std::invalid_argument&) {
    // Documented rejection path.
  } catch (const std::exception& e) {
    FAIL() << "parse('" << input << "') leaked " << typeid(e).name() << ": "
           << e.what();
  }
}

TEST(TimeseriesConfigFuzz, TenThousandSeededMutations) {
  const std::vector<std::string> corpus = {"10",        "5:8192", "1:64",
                                           "60000:64",  "25",     "10:16777216",
                                           ""};
  Mutator m(0x75dbULL);
  int parsed = 0, rejected = 0;
  for (int i = 0; i < 10'000; ++i) {
    const std::string input =
        m.below(10) == 0
            ? std::string(m.below(24), static_cast<char>(m.next() & 0xff))
            : m.mutate(corpus[m.below(corpus.size())]);
    try {
      (void)TimeseriesConfig::parse(input);
      ++parsed;
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
    expect_contract(input);
  }
  EXPECT_GT(parsed, 100) << "mutations never produced a valid spec";
  EXPECT_GT(rejected, 1000) << "mutations never produced an invalid spec";
}

}  // namespace
}  // namespace sb::obs
