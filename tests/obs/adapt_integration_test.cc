// End-to-end tests for the online adaptation loop (core/adapt.h) riding
// the full simulator: adaptation-off is bit-identical to the golden path,
// adaptation-on under injected power noise strictly reduces the audited
// mean |relative error| (the same scenario the sbaudit --diff ctest gate
// pins from the CLI), adapted exports stay byte-identical across
// --jobs=1/8, and the raw-vs-corrected residual columns behave.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "core/adapt.h"
#include "core/smart_balance.h"
#include "fault/fault_plan.h"
#include "mini_json.h"
#include "obs/audit_writer.h"
#include "obs/sink.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/runner.h"
#include "sim/simulation.h"

namespace sb::sim {
namespace {

SimulationConfig base_cfg() {
  SimulationConfig cfg;
  cfg.duration = milliseconds(600);
  cfg.seed = 1234;
  return cfg;
}

SimulationResult run_smart(SimulationConfig cfg,
                           core::SmartBalanceConfig sc = {}) {
  const auto platform = arch::Platform::quad_heterogeneous();
  Simulation s(platform, cfg);
  s.set_balancer(smartbalance_factory(sc)(s));
  s.add_mix(5, 2);  // the sbaudit --diff worked example's workload
  return s.run();
}

/// The noisy-sensing ablation arm: heavy multiplicative gaussian noise on
/// the power rails, defenses off so the polluted samples reach the
/// predictor — the regime online adaptation exists to repair.
core::SmartBalanceConfig noisy_sc() {
  core::SmartBalanceConfig sc;
  sc.fault_plan = fault::FaultPlan::parse("noise:0.8:8");
  sc.defenses = core::SmartBalanceConfig::Defenses::kOff;
  return sc;
}

double combined_mean_abs_err_pct(const obs::AuditSnapshot& a) {
  double gips = 0, power = 0;
  for (const auto& t : a.threads) {
    gips += std::abs(t.gips_err);
    power += std::abs(t.power_err);
  }
  const double n = static_cast<double>(a.threads.size());
  return 100.0 * 0.5 * (gips / n + power / n);
}

TEST(AdaptIntegration, AdaptationOffIsBitIdenticalToGoldenPath) {
  // A default-constructed Adaptation (and an explicitly parsed empty spec)
  // must not perturb a single simulated number.
  const SimulationResult plain = run_smart(base_cfg());
  core::SmartBalanceConfig sc;
  sc.adaptation = core::AdaptationConfig::parse("");
  const SimulationResult off = run_smart(base_cfg(), sc);
  EXPECT_EQ(plain.instructions, off.instructions);
  EXPECT_EQ(plain.migrations, off.migrations);
  EXPECT_DOUBLE_EQ(plain.ips_per_watt, off.ips_per_watt);
  EXPECT_DOUBLE_EQ(plain.energy_j, off.energy_j);
  EXPECT_EQ(off.adapt_joins, 0u);
  EXPECT_EQ(off.adapt_rls_updates, 0u);
}

TEST(AdaptIntegration, RlsReducesAuditedErrorUnderPowerNoise) {
  // The in-process twin of the sbaudit --diff --require-improvement ctest
  // gate: same platform, workload, duration, seed and fault plan. The sim
  // is deterministic, so this is an exact regression pin, not a flaky
  // statistical test.
  SimulationConfig cfg = base_cfg();
  cfg.duration = milliseconds(3000);
  cfg.obs.audit = true;

  const SimulationResult off = run_smart(cfg, noisy_sc());
  core::SmartBalanceConfig adapted = noisy_sc();
  adapted.adaptation = core::AdaptationConfig::parse("rls");
  const SimulationResult on = run_smart(cfg, adapted);

  ASSERT_NE(off.obs, nullptr);
  ASSERT_NE(on.obs, nullptr);
  ASSERT_GT(off.obs->audit.threads.size(), 50u);
  ASSERT_GT(on.obs->audit.threads.size(), 50u);
  EXPECT_GT(on.adapt_joins, 0u);
  EXPECT_GT(on.adapt_rls_updates, 0u);

  const double err_off = combined_mean_abs_err_pct(off.obs->audit);
  const double err_on = combined_mean_abs_err_pct(on.obs->audit);
  EXPECT_LT(err_on, err_off)
      << "online RLS did not improve the audited forecasts: off="
      << err_off << "% on=" << err_on << "%";
}

TEST(AdaptIntegration, AdaptCountersRideTheJsonReport) {
  SimulationConfig cfg = base_cfg();
  cfg.duration = milliseconds(3000);
  cfg.obs.audit = true;
  core::SmartBalanceConfig sc = noisy_sc();
  sc.adaptation = core::AdaptationConfig::parse("bias,rls");
  const SimulationResult r = run_smart(cfg, sc);
  ASSERT_NE(r.obs, nullptr);
  EXPECT_GT(r.adapt_joins, 0u);

  const auto doc = testjson::parse(to_json(r));
  ASSERT_TRUE(doc.contains("audit"));
  const auto& audit = doc.at("audit");
  ASSERT_TRUE(audit.contains("adapt"));
  EXPECT_EQ(audit.at("adapt").at("joins").num(),
            static_cast<double>(r.adapt_joins));
  EXPECT_EQ(audit.at("adapt").at("rls_updates").num(),
            static_cast<double>(r.adapt_rls_updates));
  EXPECT_EQ(audit.at("adapt").at("cov_resets").num(),
            static_cast<double>(r.adapt_cov_resets));
}

TEST(AdaptIntegration, RawAndCorrectedResidualsSplitExactlyWithBias) {
  // With adaptation off the raw columns ARE the corrected columns, byte
  // for byte; with the bias tier on they must diverge on a noisy run
  // (the corrector is actually moving the forecasts).
  SimulationConfig cfg = base_cfg();
  cfg.duration = milliseconds(3000);
  cfg.obs.audit = true;

  const SimulationResult off = run_smart(cfg, noisy_sc());
  ASSERT_NE(off.obs, nullptr);
  for (const auto& t : off.obs->audit.threads) {
    EXPECT_EQ(t.raw_gips_err, t.gips_err);
    EXPECT_EQ(t.raw_power_err, t.power_err);
  }

  core::SmartBalanceConfig sc = noisy_sc();
  sc.adaptation = core::AdaptationConfig::parse("bias");
  const SimulationResult on = run_smart(cfg, sc);
  ASSERT_NE(on.obs, nullptr);
  int diverged = 0;
  for (const auto& t : on.obs->audit.threads) {
    if (t.raw_gips_err != t.gips_err || t.raw_power_err != t.power_err) {
      ++diverged;
    }
  }
  EXPECT_GT(diverged, 0);
}

TEST(AdaptIntegration, AdaptedExportIsByteIdenticalAcrossJobs) {
  // Same invariant the audit recorder pins, but with the full adaptation
  // stack (bias + RLS + drift resets) active: everything is a pure
  // function of sim state, so the merged export cannot depend on how many
  // worker threads ran the batch.
  SimulationConfig cfg = base_cfg();
  cfg.duration = milliseconds(300);
  cfg.obs.audit = true;
  core::SmartBalanceConfig sc = noisy_sc();
  sc.adaptation = core::AdaptationConfig::parse("bias,rls");

  std::vector<ExperimentSpec> specs;
  for (const std::string bench : {"IMB_HTHI", "IMB_MTMI", "bodytrack"}) {
    for (const int per : {2, 4}) {
      ExperimentSpec spec;
      spec.platform = arch::Platform::quad_heterogeneous();
      spec.cfg = cfg;
      spec.workload = [bench, per](Simulation& s) {
        s.add_benchmark(bench, per);
      };
      spec.policy = smartbalance_factory(sc);
      spec.label = bench + "/adapted/" + std::to_string(per);
      specs.push_back(std::move(spec));
    }
  }

  auto merged = [&](int threads) {
    ExperimentRunner::Config rc;
    rc.threads = threads;
    const BatchResult batch = ExperimentRunner(rc).run(specs);
    std::vector<const obs::RunObs*> runs;
    for (const auto& r : batch.runs) {
      EXPECT_TRUE(r.ok()) << r.error;
      if (r.result.obs) runs.push_back(r.result.obs.get());
    }
    std::ostringstream os;
    obs::write_audit(os, runs);
    return os.str();
  };

  const std::string seq = merged(1);
  const std::string par = merged(8);
  EXPECT_EQ(seq, par);
  EXPECT_NE(seq.find("#summary runs=6"), std::string::npos);
}

}  // namespace
}  // namespace sb::sim
