// SloEngine tests: the burn-rate grammar (parse/canonical + 10k seeded
// fuzz, same contract as the FaultPlan fuzz harness) and the rolling-window
// breach semantics — an objective breaches when the violating count of its
// full window exceeds burn * window_frames, breach and recovery are edge
// events with trace instants, and every scored frame appends slo.burn.* /
// slo.breached.* rows back into the timeseries.
#include "obs/slo.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <typeinfo>
#include <vector>

#include "obs/trace.h"

namespace sb::obs {
namespace {

// --------------------------------------------------------------------------
// Grammar
// --------------------------------------------------------------------------

TEST(SloConfig, ParsesObjectivesWithDefaults) {
  const SloConfig cfg =
      SloConfig::parse("p99_wake_us<2000:burn=0.02,je>55e6:window=200");
  ASSERT_EQ(cfg.objectives.size(), 2u);
  const SloObjective& a = cfg.objectives[0];
  EXPECT_EQ(a.signal, "p99_wake_us");
  EXPECT_TRUE(a.upper);
  EXPECT_EQ(a.threshold, 2000.0);
  EXPECT_EQ(a.burn, 0.02);
  EXPECT_EQ(a.window, milliseconds(200));  // default window
  const SloObjective& b = cfg.objectives[1];
  EXPECT_EQ(b.signal, "je");
  EXPECT_FALSE(b.upper);
  EXPECT_EQ(b.threshold, 55e6);
  EXPECT_EQ(b.burn, 0.0);  // default burn: first violation may breach
  EXPECT_EQ(b.window, milliseconds(200));
  EXPECT_FALSE(cfg.empty());
}

TEST(SloConfig, RejectsBadSpecs) {
  for (const char* bad :
       {"", "p99", "p99<", "p99<abc", "p99<nan", "p99<inf", "p99<1e999",
        "<2000", "9sig<1", "sig-x<1", "p99<1:burn=1", "p99<1:burn=-0.1",
        "p99<1:burn=2", "p99<1:window=0", "p99<1:window=600001",
        "p99<1:window=1e3", "p99<1:wat=1", "p99<1:burn=", "p99<1,",
        "p99<1:burn=0.1:"}) {
    EXPECT_THROW((void)SloConfig::parse(bad), std::invalid_argument)
        << "'" << bad << "'";
  }
}

TEST(SloConfig, CanonicalRoundTrips) {
  for (const char* spec :
       {"p99_wake_us<2000:burn=0.02", "je>55e6:window=200",
        "je_w>1e9:burn=0.3:window=200,p99_wake_us<20000:burn=0.3:window=200",
        "a.b_c<0.125", "x>0:window=600000", "x>0:window=100000"}) {
    const SloConfig cfg = SloConfig::parse(spec);
    const std::string canon = cfg.canonical();
    const SloConfig again = SloConfig::parse(canon);
    EXPECT_EQ(again.canonical(), canon) << spec;
    ASSERT_EQ(again.objectives.size(), cfg.objectives.size()) << spec;
    for (std::size_t i = 0; i < cfg.objectives.size(); ++i) {
      EXPECT_EQ(again.objectives[i].signal, cfg.objectives[i].signal);
      EXPECT_EQ(again.objectives[i].upper, cfg.objectives[i].upper);
      EXPECT_EQ(again.objectives[i].threshold, cfg.objectives[i].threshold);
      EXPECT_EQ(again.objectives[i].burn, cfg.objectives[i].burn);
      EXPECT_EQ(again.objectives[i].window, cfg.objectives[i].window);
    }
  }
}

// --------------------------------------------------------------------------
// Engine semantics
// --------------------------------------------------------------------------

TimeseriesRecorder make_recorder() {
  TimeseriesConfig cfg;
  cfg.enabled = true;
  cfg.window = milliseconds(10);
  cfg.capacity = 1024;
  return TimeseriesRecorder(cfg);
}

/// Feeds one frame with `signal` = value and scores it.
void feed(SloEngine& eng, TimeseriesRecorder& rec, MetricsRegistry& m,
          EpochTracer* tracer, std::uint64_t frame, double value) {
  rec.begin_frame(frame * 10'000'000);
  rec.record(rec.intern("sig"), value);
  eng.on_frame(rec, m, tracer, frame);
}

std::uint64_t counter_of(const MetricsRegistry& m, const char* name) {
  const auto it = m.counters().find(name);
  return it != m.counters().end() ? it->second.value : 0;
}

TEST(SloEngine, BreachesWhenViolationsExceedBurnBudget) {
  // window=50ms over a 10ms sampler -> 5 frames; burn=0.3 tolerates
  // floor(0.3*5)=1 violating frame: breach at the 2nd violation in window.
  SloEngine eng(SloConfig::parse("sig<100:burn=0.3:window=50"),
                milliseconds(10));
  TimeseriesRecorder rec = make_recorder();
  MetricsRegistry m;
  EpochTracer tracer(64);

  std::uint64_t f = 0;
  feed(eng, rec, m, &tracer, f++, 50.0);   // ok
  feed(eng, rec, m, &tracer, f++, 150.0);  // violation #1: within budget
  EXPECT_EQ(eng.breaches(), 0u);
  feed(eng, rec, m, &tracer, f++, 150.0);  // violation #2: breach edge
  EXPECT_EQ(eng.breaches(), 1u);
  EXPECT_TRUE(eng.ever_breached());
  feed(eng, rec, m, &tracer, f++, 150.0);  // still breached: no new edge
  EXPECT_EQ(eng.breaches(), 1u);
  // Recovery: violations age out of the 5-frame window.
  feed(eng, rec, m, &tracer, f++, 50.0);
  feed(eng, rec, m, &tracer, f++, 50.0);
  feed(eng, rec, m, &tracer, f++, 50.0);  // window still holds 2 violations
  EXPECT_EQ(eng.recoveries(), 0u);
  feed(eng, rec, m, &tracer, f++, 50.0);  // 1 violation left: recovered
  EXPECT_EQ(eng.recoveries(), 1u);

  EXPECT_EQ(counter_of(m, "slo.samples"), f);
  EXPECT_EQ(counter_of(m, "slo.violations"), 3u);
  EXPECT_EQ(counter_of(m, "slo.breaches"), 1u);
  EXPECT_EQ(counter_of(m, "slo.recoveries"), 1u);
  // Frames scored while breached: violations #2..#3 plus the aging-out
  // frames until the budget is met again.
  EXPECT_EQ(eng.breach_frames(), counter_of(m, "slo.breach_samples"));
  EXPECT_GT(eng.breach_frames(), 0u);

  // Edge events landed on the tracer as instants.
  const auto snap = tracer.snapshot();
  int breach_events = 0, recover_events = 0;
  for (const TraceEvent& ev : snap.events) {
    if (snap.name_of(ev.name) == "slo.breach") ++breach_events;
    if (snap.name_of(ev.name) == "slo.recovered") ++recover_events;
  }
  EXPECT_EQ(breach_events, 1);
  EXPECT_EQ(recover_events, 1);
}

TEST(SloEngine, ZeroBurnBreachesOnFirstViolation) {
  SloEngine eng(SloConfig::parse("sig<100:window=50"), milliseconds(10));
  TimeseriesRecorder rec = make_recorder();
  MetricsRegistry m;
  feed(eng, rec, m, nullptr, 0, 99.0);  // strictly below: ok
  EXPECT_EQ(eng.breaches(), 0u);
  feed(eng, rec, m, nullptr, 1, 100.0);  // at threshold: violation
  EXPECT_EQ(eng.breaches(), 1u);
}

TEST(SloEngine, LowerBoundObjectiveViolatesBelowThreshold) {
  SloEngine eng(SloConfig::parse("sig>10:window=50"), milliseconds(10));
  TimeseriesRecorder rec = make_recorder();
  MetricsRegistry m;
  feed(eng, rec, m, nullptr, 0, 11.0);  // strictly above: ok
  EXPECT_EQ(eng.breaches(), 0u);
  feed(eng, rec, m, nullptr, 1, 10.0);  // at threshold: violation
  EXPECT_EQ(eng.breaches(), 1u);
}

TEST(SloEngine, AbsentSignalFramesAreNotScored) {
  SloEngine eng(SloConfig::parse("sig<100:window=50"), milliseconds(10));
  TimeseriesRecorder rec = make_recorder();
  MetricsRegistry m;
  rec.begin_frame(0);
  rec.record(rec.intern("other"), 1.0);  // frame without "sig"
  eng.on_frame(rec, m, nullptr, 0);
  EXPECT_EQ(counter_of(m, "slo.samples"), 0u);
  feed(eng, rec, m, nullptr, 1, 50.0);
  EXPECT_EQ(counter_of(m, "slo.samples"), 1u);
}

TEST(SloEngine, RecordsBurnAndBreachedRowsEveryScoredFrame) {
  SloEngine eng(SloConfig::parse("sig<100:burn=0.5:window=40"),
                milliseconds(10));  // 4-frame window, budget 2
  TimeseriesRecorder rec = make_recorder();
  MetricsRegistry m;
  feed(eng, rec, m, nullptr, 0, 150.0);
  const std::uint32_t burn_id = rec.intern("slo.burn.sig");
  const std::uint32_t breached_id = rec.intern("slo.breached.sig");
  EXPECT_EQ(rec.frame_value(burn_id, -1.0), 0.25);  // 1 of 4 frames
  EXPECT_EQ(rec.frame_value(breached_id, -1.0), 0.0);
  feed(eng, rec, m, nullptr, 1, 150.0);
  EXPECT_EQ(rec.frame_value(burn_id, -1.0), 0.5);
  EXPECT_EQ(rec.frame_value(breached_id, -1.0), 0.0);  // == budget: holds
  feed(eng, rec, m, nullptr, 2, 150.0);
  EXPECT_EQ(rec.frame_value(burn_id, -1.0), 0.75);
  EXPECT_EQ(rec.frame_value(breached_id, -1.0), 1.0);  // > budget: breached
}

TEST(SloEngine, WindowShorterThanSamplerStillScoresEveryFrame) {
  // window=1ms over a 10ms sampler clamps to a 1-frame window.
  SloEngine eng(SloConfig::parse("sig<100:window=1"), milliseconds(10));
  TimeseriesRecorder rec = make_recorder();
  MetricsRegistry m;
  feed(eng, rec, m, nullptr, 0, 150.0);
  EXPECT_EQ(eng.breaches(), 1u);
  feed(eng, rec, m, nullptr, 1, 50.0);
  EXPECT_EQ(eng.recoveries(), 1u);
  feed(eng, rec, m, nullptr, 2, 150.0);
  EXPECT_EQ(eng.breaches(), 2u);
}

// --------------------------------------------------------------------------
// Grammar fuzz: 10k seeded mutations (FaultPlan-fuzz contract)
// --------------------------------------------------------------------------

/// SplitMix64 mutation stream, independent of libc rand.
class Mutator {
 public:
  explicit Mutator(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  char random_char() {
    static const char kAlphabet[] =
        "0123456789.:,-+eE \tburn=window=<>_jep99wakeusw\0\x7f";
    return kAlphabet[below(sizeof(kAlphabet) - 1)];
  }

  std::string mutate(std::string s) {
    const int edits = 1 + static_cast<int>(below(4));
    for (int e = 0; e < edits; ++e) {
      switch (below(5)) {
        case 0:
          if (!s.empty()) s[below(s.size())] = random_char();
          break;
        case 1:
          s.insert(s.begin() +
                       static_cast<std::ptrdiff_t>(below(s.size() + 1)),
                   random_char());
          break;
        case 2:
          if (!s.empty()) s.erase(below(s.size()), 1);
          break;
        case 3:
          if (!s.empty()) s.resize(below(s.size()));
          break;
        case 4:
          if (!s.empty()) {
            const std::size_t at = below(s.size());
            s += s.substr(at, below(s.size() - at) + 1);
          }
          break;
      }
    }
    return s;
  }

 private:
  std::uint64_t state_;
};

/// parse() must return or throw std::invalid_argument; nothing else. An
/// accepted spec must round-trip through canonical().
void expect_contract(const std::string& input) {
  try {
    const SloConfig cfg = SloConfig::parse(input);
    const std::string canon = cfg.canonical();
    const SloConfig again = SloConfig::parse(canon);
    EXPECT_EQ(again.canonical(), canon)
        << "unstable round-trip for input '" << input << "'";
    EXPECT_EQ(again.objectives.size(), cfg.objectives.size());
  } catch (const std::invalid_argument&) {
    // Documented rejection path.
  } catch (const std::exception& e) {
    FAIL() << "parse('" << input << "') leaked " << typeid(e).name() << ": "
           << e.what();
  }
}

TEST(SloConfigFuzz, TenThousandSeededMutations) {
  const std::vector<std::string> corpus = {
      "p99_wake_us<2000:burn=0.02",
      "je>55e6:window=200",
      "je_w>1e9:burn=0.3:window=200,p99_wake_us<20000:burn=0.3:window=200",
      "a<1",
      "sig_1.x>0:burn=0.5:window=1",
      "x>0:window=600000",
      "",
  };
  Mutator m(0x510f00dULL);
  int parsed = 0, rejected = 0;
  for (int i = 0; i < 10'000; ++i) {
    const std::string input =
        m.below(10) == 0
            ? std::string(m.below(32), static_cast<char>(m.next() & 0xff))
            : m.mutate(corpus[m.below(corpus.size())]);
    try {
      (void)SloConfig::parse(input);
      ++parsed;
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
    expect_contract(input);
  }
  EXPECT_GT(parsed, 100) << "mutations never produced a valid spec";
  EXPECT_GT(rejected, 1000) << "mutations never produced an invalid spec";
}

}  // namespace
}  // namespace sb::obs
