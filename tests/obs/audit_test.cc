// Unit tests for the prediction-audit flight recorder: join semantics,
// residual math, decision regret, the drift detector's rising-edge/re-arm
// contract, ring overflow accounting, migration close-out, and the
// schema-versioned export's byte-level determinism.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/audit.h"
#include "obs/audit_writer.h"
#include "obs/trace.h"

namespace sb::obs {
namespace {

AuditObservation make_obs(std::int64_t tid, std::int32_t core,
                          std::int32_t core_type, double gips, double watts,
                          bool measured = true) {
  AuditObservation o;
  o.tid = tid;
  o.core = core;
  o.core_type = core_type;
  o.gips = gips;
  o.watts = watts;
  o.measured = measured;
  return o;
}

ThreadPrediction make_pred(std::int64_t tid, std::int32_t core,
                           std::int32_t src_type, std::int32_t dst_type,
                           double gips, double w) {
  ThreadPrediction p;
  p.tid = tid;
  p.core = core;
  p.src_type = src_type;
  p.dst_type = dst_type;
  p.pred_gips = gips;
  p.pred_w = w;
  return p;
}

EpochDecision make_decision(std::uint64_t epoch, double pred_dj = 0,
                            bool applied = true) {
  EpochDecision d;
  d.epoch = epoch;
  d.applied = applied;
  d.pred_dj = pred_dj;
  return d;
}

TEST(AuditRecorder, JoinComputesSignedRelativeResiduals) {
  AuditRecorder r(AuditConfig{});
  r.join(1, {}, 10.0);
  r.record_decision(make_decision(1, /*pred_dj=*/0.5));
  r.record_prediction(make_pred(7, 2, 0, 1, /*gips=*/2.0, /*w=*/1.0));

  const auto edges =
      r.join(2, {make_obs(7, 2, 1, /*gips=*/2.5, /*watts=*/0.8)}, 10.4);
  EXPECT_TRUE(edges.empty());
  EXPECT_EQ(r.joined(), 1u);
  EXPECT_EQ(r.unjoined(), 0u);
  EXPECT_EQ(r.predictions(), 1u);

  const AuditSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.threads.size(), 1u);
  const ThreadAuditRecord& t = snap.threads[0];
  EXPECT_EQ(t.epoch, 2u);
  EXPECT_EQ(t.tid, 7);
  EXPECT_EQ(t.core, 2);
  EXPECT_EQ(t.src_type, 0);
  EXPECT_EQ(t.dst_type, 1);
  // err = (obs - pred) / obs, signed.
  EXPECT_DOUBLE_EQ(t.gips_err, (2.5 - 2.0) / 2.5);
  EXPECT_DOUBLE_EQ(t.power_err, (0.8 - 1.0) / 0.8);

  // The forecasting pass's epoch entry got its realized ΔJ and regret.
  ASSERT_EQ(snap.epochs.size(), 1u);
  const EpochAuditRecord& e = snap.epochs[0];
  EXPECT_EQ(e.epoch, 1u);
  EXPECT_DOUBLE_EQ(e.realized_j, 10.0);
  EXPECT_EQ(e.realized_valid, 1);
  EXPECT_DOUBLE_EQ(e.realized_dj, 10.4 - 10.0);
  EXPECT_DOUBLE_EQ(e.regret, 0.5 - (10.4 - 10.0));
  EXPECT_EQ(e.joined, 1);
  EXPECT_EQ(e.unjoined, 0);
}

TEST(AuditRecorder, JoinRequiresMeasuredObservationOnPredictedCore) {
  struct Case {
    const char* name;
    AuditObservation obs;
    bool has_obs;
  };
  const Case cases[] = {
      {"thread gone", AuditObservation{}, false},
      {"unmeasured", make_obs(7, 2, 1, 2.0, 1.0, /*measured=*/false), true},
      {"wrong core", make_obs(7, 3, 1, 2.0, 1.0), true},
      {"wrong type (cached pre-migration row)", make_obs(7, 2, 0, 2.0, 1.0),
       true},
  };
  for (const Case& c : cases) {
    AuditRecorder r(AuditConfig{});
    r.join(1, {}, 0.0);
    r.record_decision(make_decision(1));
    r.record_prediction(make_pred(7, 2, 0, 1, 2.0, 1.0));
    std::vector<AuditObservation> obs;
    if (c.has_obs) obs.push_back(c.obs);
    r.join(2, obs, 0.0);
    EXPECT_EQ(r.joined(), 0u) << c.name;
    EXPECT_EQ(r.unjoined(), 1u) << c.name;
    EXPECT_TRUE(r.snapshot().threads.empty()) << c.name;
  }
}

TEST(AuditRecorder, NearZeroObservationYieldsZeroResidual) {
  // A thread that retired essentially nothing says nothing about the
  // predictor; the residual is defined as 0 rather than a huge ratio.
  AuditRecorder r(AuditConfig{});
  r.join(1, {}, 0.0);
  r.record_decision(make_decision(1));
  r.record_prediction(make_pred(7, 2, 0, 1, 2.0, 1.0));
  r.join(2, {make_obs(7, 2, 1, /*gips=*/0.0, /*watts=*/1e-13)}, 0.0);
  const AuditSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.threads.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.threads[0].gips_err, 0.0);
  EXPECT_DOUBLE_EQ(snap.threads[0].power_err, 0.0);
}

TEST(AuditRecorder, EpochGapDiscardsPendingForecasts) {
  AuditRecorder r(AuditConfig{});
  r.join(1, {}, 10.0);
  r.record_decision(make_decision(1, 0.5));
  r.record_prediction(make_pred(7, 2, 0, 1, 2.0, 1.0));

  // Pass 3, not 2: the one-epoch-later contract is broken.
  r.join(3, {make_obs(7, 2, 1, 2.0, 1.0)}, 11.0);
  EXPECT_EQ(r.joined(), 0u);
  EXPECT_EQ(r.unjoined(), 1u);
  const AuditSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.epochs.size(), 1u);
  EXPECT_EQ(snap.epochs[0].realized_valid, 0);
  EXPECT_EQ(snap.epochs[0].joined, 0);
  EXPECT_EQ(snap.epochs[0].unjoined, 1);
}

TEST(AuditRecorder, PredictionsWithoutDecisionAreIgnored) {
  AuditRecorder r(AuditConfig{});
  r.record_prediction(make_pred(7, 2, 0, 1, 2.0, 1.0));
  r.record_migration(MigrationPrediction{});
  EXPECT_EQ(r.predictions(), 0u);
  const AuditSnapshot snap = r.snapshot();
  EXPECT_TRUE(snap.migrations.empty());
}

TEST(AuditRecorder, DriftRisingEdgeDebounceAndRearm) {
  AuditConfig cfg;
  cfg.ewma_alpha = 0.5;
  cfg.drift_threshold = 0.2;
  cfg.drift_min_joins = 2;
  AuditRecorder r(cfg);

  // Each "round" forecasts gips=1.0 and observes `obs_gips` one pass later:
  // err = (obs - 1) / obs.
  std::uint64_t epoch = 1;
  auto round = [&](double obs_gips) {
    r.join(epoch, {make_obs(7, 2, 1, obs_gips, 1.0)}, 0.0);
    r.record_decision(make_decision(epoch));
    r.record_prediction(make_pred(7, 2, 0, 1, 1.0, 1.0));
    ++epoch;
  };

  round(2.0);  // nothing pending yet
  // |err| = 0.5 per join; EWMA: 0.25 after 1 join (debounced: joins < 2),
  // 0.375 after 2 — rising edge.
  round(2.0);
  EXPECT_FALSE(r.drift_active());
  round(2.0);
  EXPECT_TRUE(r.drift_active());
  const AuditSnapshot first = r.snapshot();
  ASSERT_EQ(first.drift_events.size(), 1u);
  const DriftEvent& ev = first.drift_events[0];
  EXPECT_EQ(ev.src_type, 0);
  EXPECT_EQ(ev.dst_type, 1);
  EXPECT_EQ(ev.metric, 0);  // throughput residual tripped
  EXPECT_DOUBLE_EQ(ev.ewma, 0.375);
  EXPECT_EQ(ev.joins, 2u);

  // Staying over the threshold emits no further edges.
  round(2.0);
  EXPECT_EQ(r.snapshot().drift_events.size(), 1u);

  // Recovery decays the EWMA back under the threshold and re-arms.
  round(1.0);  // exact prediction; EWMA 0.4375 -> joins keep accumulating
  round(1.0);
  round(1.0);  // 0.4375 -> 0.21875 -> 0.109375: recovered
  EXPECT_FALSE(r.drift_active());
  EXPECT_EQ(r.snapshot().drift_events.size(), 1u);

  // A second degradation is a fresh rising edge.
  round(2.0);
  round(2.0);
  EXPECT_TRUE(r.drift_active());
  EXPECT_EQ(r.snapshot().drift_events.size(), 2u);

  // Final tracker state is exported.
  const AuditSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.drift_states.size(), 1u);
  EXPECT_EQ(snap.drift_states[0].src_type, 0);
  EXPECT_EQ(snap.drift_states[0].dst_type, 1);
  EXPECT_EQ(snap.drift_states[0].active, 1);
}

TEST(AuditRecorder, RingOverflowDropsOldestAndKeepsCounts) {
  AuditConfig cfg;
  cfg.capacity = 2;
  AuditRecorder r(cfg);
  for (std::uint64_t e = 1; e <= 4; ++e) {
    r.join(e, {make_obs(7, 2, 1, 2.0, 1.0)}, 0.0);
    r.record_decision(make_decision(e));
    r.record_prediction(make_pred(7, 2, 0, 1, 1.0, 1.0));
  }
  const AuditSnapshot snap = r.snapshot();
  // 4 decisions into a capacity-2 ring: epochs 3 and 4 retained.
  ASSERT_EQ(snap.epochs.size(), 2u);
  EXPECT_EQ(snap.epochs[0].epoch, 3u);
  EXPECT_EQ(snap.epochs[1].epoch, 4u);
  EXPECT_EQ(snap.dropped_epochs, 2u);
  // 3 thread joins (passes 2..4) into a capacity-2 ring.
  ASSERT_EQ(snap.threads.size(), 2u);
  EXPECT_EQ(snap.threads[0].epoch, 3u);
  EXPECT_EQ(snap.threads[1].epoch, 4u);
  EXPECT_EQ(snap.dropped_threads, 1u);
  EXPECT_EQ(r.joined(), 3u);
}

TEST(AuditRecorder, MigrationValidatedByFirstWarmedDestinationMeasurement) {
  AuditRecorder r(AuditConfig{});
  r.join(1, {}, 0.0);
  r.record_decision(make_decision(1));
  MigrationPrediction m;
  m.tid = 5;
  m.src = 0;
  m.dst = 3;
  m.src_type = 0;
  m.dst_type = 2;
  m.pred_gain = 0.4;
  m.src_eff = 1.0;
  r.record_migration(m);

  // Epoch 2 still serves the cached pre-migration row (source core): the
  // entry must stay pending, not be closed out as "thread moved away".
  r.join(2, {make_obs(5, 0, 0, 1.0, 1.0)}, 0.0);
  {
    const AuditSnapshot snap = r.snapshot();
    ASSERT_EQ(snap.migrations.size(), 1u);
    EXPECT_EQ(snap.migrations[0].realized_valid, 0);
  }

  // Epoch 3 sees the warmed-up destination measurement.
  r.join(3, {make_obs(5, 3, 2, /*gips=*/3.0, /*watts=*/2.0)}, 0.0);
  const AuditSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.migrations.size(), 1u);
  const MigrationAuditRecord& rec = snap.migrations[0];
  EXPECT_EQ(rec.epoch, 1u);
  EXPECT_EQ(rec.tid, 5);
  EXPECT_EQ(rec.src, 0);
  EXPECT_EQ(rec.dst, 3);
  EXPECT_DOUBLE_EQ(rec.pred_gain, 0.4);
  EXPECT_EQ(rec.realized_valid, 1);
  EXPECT_DOUBLE_EQ(rec.realized_gain, 3.0 / 2.0 - 1.0);
}

TEST(AuditRecorder, MigrationWindowExpiryLeavesRecordUnvalidated) {
  AuditConfig cfg;
  cfg.migration_join_max_age = 2;
  AuditRecorder r(cfg);
  r.join(1, {}, 0.0);
  r.record_decision(make_decision(1));
  MigrationPrediction m;
  m.tid = 5;
  m.src = 0;
  m.dst = 3;
  m.dst_type = 2;
  r.record_migration(m);

  // The destination measurement never warms up within the window.
  r.join(2, {make_obs(5, 0, 0, 1.0, 1.0)}, 0.0);
  r.join(3, {make_obs(5, 0, 0, 1.0, 1.0)}, 0.0);  // age 2 >= max_age: closed
  r.join(4, {make_obs(5, 3, 2, 3.0, 2.0)}, 0.0);  // too late
  const AuditSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.migrations.size(), 1u);
  EXPECT_EQ(snap.migrations[0].realized_valid, 0);
  EXPECT_DOUBLE_EQ(snap.migrations[0].realized_gain, 0.0);
}

TEST(AuditRecorder, MigrationOfExitedThreadIsClosedImmediately) {
  AuditRecorder r(AuditConfig{});
  r.join(1, {}, 0.0);
  r.record_decision(make_decision(1));
  MigrationPrediction m;
  m.tid = 5;
  m.dst = 3;
  m.dst_type = 2;
  r.record_migration(m);
  r.join(2, {}, 0.0);  // thread gone
  r.join(3, {make_obs(5, 3, 2, 3.0, 2.0)}, 0.0);  // reappearance: ignored
  EXPECT_EQ(r.snapshot().migrations[0].realized_valid, 0);
}

// --------------------------------------------------------------------------
// Export writer
// --------------------------------------------------------------------------

RunObs audited_run(int run, const std::string& label, double obs_gips) {
  AuditRecorder r(AuditConfig{});
  r.join(1, {}, 1.0);
  r.record_decision(make_decision(1, 0.25));
  r.record_prediction(make_pred(7, 2, 0, 1, 1.0, 1.0));
  MigrationPrediction m;
  m.tid = 7;
  m.src = 0;
  m.dst = 2;
  m.src_type = 0;
  m.dst_type = 1;
  m.src_eff = 0.5;
  r.record_migration(m);
  r.join(2, {make_obs(7, 2, 1, obs_gips, 1.0)}, 1.5);
  RunObs o;
  o.run = run;
  o.label = label;
  o.audit_enabled = true;
  o.audit = r.snapshot();
  return o;
}

std::string render(const std::vector<const RunObs*>& runs) {
  std::ostringstream os;
  write_audit(os, runs);
  return os.str();
}

TEST(AuditWriter, OutputIsIndependentOfRunOrderPassedIn) {
  const RunObs a = audited_run(0, "alpha", 2.0);
  const RunObs b = audited_run(1, "beta", 4.0);
  const std::string fwd = render({&a, &b});
  const std::string rev = render({&b, &a});
  EXPECT_EQ(fwd, rev);  // byte identity: blocks ordered by stamped index
  EXPECT_NE(fwd.find("#run 0 alpha"), std::string::npos);
  EXPECT_NE(fwd.find("#run 1 beta"), std::string::npos);
  EXPECT_LT(fwd.find("#run 0 alpha"), fwd.find("#run 1 beta"));
}

TEST(AuditWriter, HeaderDeclaresSchemaVersionAndColumns) {
  const RunObs a = audited_run(0, "alpha", 2.0);
  const std::string out = render({&a});
  EXPECT_EQ(out.rfind("#sb-audit v2\n", 0), 0u);
  for (const char* cols :
       {audit_thread_columns(), audit_epoch_columns(),
        audit_migration_columns(), audit_drift_columns(),
        audit_state_columns()}) {
    EXPECT_NE(out.find(cols), std::string::npos) << cols;
  }
  EXPECT_NE(out.find("#summary runs=1"), std::string::npos);
  EXPECT_NE(out.find("#counters 0 "), std::string::npos);
}

TEST(AuditWriter, SkipsRunsWithoutTheRecorder) {
  const RunObs a = audited_run(3, "only", 2.0);
  RunObs plain;  // e.g. a metrics-only vanilla run in the same sweep
  plain.run = 1;
  plain.label = "plain";
  const std::string out = render({&plain, &a});
  EXPECT_NE(out.find("#summary runs=1"), std::string::npos);
  EXPECT_EQ(out.find("plain"), std::string::npos);
}

TEST(AuditWriter, RendersIdenticalSnapshotsIdentically) {
  // Same simulated content rendered twice must produce the same bytes —
  // the property the golden/byte-identity integration tests build on.
  const RunObs a1 = audited_run(0, "alpha", 2.0);
  const RunObs a2 = audited_run(0, "alpha", 2.0);
  EXPECT_EQ(render({&a1}), render({&a2}));
}

}  // namespace
}  // namespace sb::obs
