#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "mini_json.h"

namespace sb::obs {
namespace {

// --------------------------------------------------------------------------
// Bucket geometry
// --------------------------------------------------------------------------

TEST(HistogramBuckets, ExactUnitBucketsBelowSubBuckets) {
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    const int b = Histogram::bucket_index(v);
    EXPECT_EQ(Histogram::bucket_lower(b), v);
    EXPECT_EQ(Histogram::bucket_upper(b), v + 1);
  }
}

TEST(HistogramBuckets, EveryValueFallsInsideItsBucket) {
  Rng rng(17);
  std::vector<std::uint64_t> probes = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17,
                                       1000, 1 << 20, ~0ULL, ~0ULL - 1};
  for (int i = 0; i < 2000; ++i) {
    probes.push_back(rng.next_u64() >> (rng.next_u64() % 64));
  }
  for (std::uint64_t v : probes) {
    const int b = Histogram::bucket_index(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, Histogram::kNumBuckets);
    EXPECT_GE(v, Histogram::bucket_lower(b)) << "v=" << v;
    if (Histogram::bucket_upper(b) != ~0ULL) {
      EXPECT_LT(v, Histogram::bucket_upper(b)) << "v=" << v;
    }
  }
}

TEST(HistogramBuckets, IndexIsMonotone) {
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.next_u64() >> (rng.next_u64() % 64);
    const std::uint64_t b = rng.next_u64() >> (rng.next_u64() % 64);
    if (a <= b) {
      EXPECT_LE(Histogram::bucket_index(a), Histogram::bucket_index(b));
    } else {
      EXPECT_GE(Histogram::bucket_index(a), Histogram::bucket_index(b));
    }
  }
}

TEST(HistogramBuckets, RelativeWidthBoundedByQuarter) {
  // Octave buckets with 4 linear subdivisions: width/lower <= 1/4 for all
  // buckets past the unit range — the basis of the quantile error bound.
  for (int b = Histogram::bucket_index(Histogram::kSubBuckets);
       b < Histogram::kNumBuckets; ++b) {
    const std::uint64_t lo = Histogram::bucket_lower(b);
    const std::uint64_t hi = Histogram::bucket_upper(b);
    if (hi == ~0ULL) break;  // saturated top bucket
    EXPECT_LE(hi - lo, lo / Histogram::kSubBuckets + 1)
        << "bucket " << b << " [" << lo << "," << hi << ")";
  }
}

// --------------------------------------------------------------------------
// Property: merge is associative and commutative
// --------------------------------------------------------------------------

Histogram random_histogram(std::uint64_t seed, int n) {
  Rng rng(seed);
  Histogram h;
  for (int i = 0; i < n; ++i) {
    h.record(rng.next_u64() >> (rng.next_u64() % 64));
  }
  return h;
}

void expect_same(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    ASSERT_EQ(a.bucket_count(i), b.bucket_count(i)) << "bucket " << i;
  }
}

TEST(HistogramMerge, CommutativeOverRandomInputs) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Histogram a = random_histogram(seed, 200);
    const Histogram b = random_histogram(seed + 1000, 300);
    Histogram ab = a;
    ab.merge(b);
    Histogram ba = b;
    ba.merge(a);
    expect_same(ab, ba);
  }
}

TEST(HistogramMerge, AssociativeOverRandomInputs) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Histogram a = random_histogram(seed, 150);
    const Histogram b = random_histogram(seed + 100, 250);
    const Histogram c = random_histogram(seed + 200, 50);
    Histogram left = a;   // (a+b)+c
    left.merge(b);
    left.merge(c);
    Histogram bc = b;     // a+(b+c)
    bc.merge(c);
    Histogram right = a;
    right.merge(bc);
    expect_same(left, right);
  }
}

TEST(HistogramMerge, DefaultIsIdentity) {
  const Histogram a = random_histogram(5, 100);
  Histogram merged = a;
  merged.merge(Histogram());
  expect_same(merged, a);
  Histogram other;
  other.merge(a);
  expect_same(other, a);
}

// --------------------------------------------------------------------------
// Property: quantile bounded within one bucket of the exact value
// --------------------------------------------------------------------------

TEST(HistogramQuantile, ExactValueAlwaysInsideReportedBucket) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 7);
    Histogram h;
    std::vector<std::uint64_t> values;
    const int n = 50 + static_cast<int>(seed) * 37;
    for (int i = 0; i < n; ++i) {
      const std::uint64_t v = rng.next_u64() >> (rng.next_u64() % 60);
      values.push_back(v);
      h.record(v);
    }
    std::sort(values.begin(), values.end());
    for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
      const std::size_t rank = static_cast<std::size_t>(std::max<std::int64_t>(
          1, static_cast<std::int64_t>(
                 std::ceil(q * static_cast<double>(values.size())))));
      const std::uint64_t exact = values[rank - 1];
      EXPECT_GE(exact, h.quantile_lower(q)) << "q=" << q << " seed=" << seed;
      EXPECT_LE(exact, h.quantile(q)) << "q=" << q << " seed=" << seed;
      // Bracket width == one bucket => bounded relative error (25%).
      EXPECT_EQ(Histogram::bucket_index(h.quantile_lower(q)),
                Histogram::bucket_index(
                    std::min(h.quantile(q), h.max())));
    }
  }
}

TEST(HistogramQuantile, SmallExactValues) {
  Histogram h;
  for (std::uint64_t v : {0ULL, 1ULL, 1ULL, 2ULL, 3ULL}) h.record(v);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 1u);
  EXPECT_EQ(h.quantile(1.0), 3u);
}

// --------------------------------------------------------------------------
// Registry semantics
// --------------------------------------------------------------------------

TEST(MetricsRegistry, CreateOnFirstUseAndStableReferences) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  Counter& c = m.counter("a.count");
  c.add();
  m.counter("a.count").add(4);
  EXPECT_EQ(c.value, 5u);
  m.gauge("g").set(2.5);
  m.histogram("h").record(7);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.counters().size(), 1u);
  EXPECT_EQ(m.gauges().at("g").value, 2.5);
  EXPECT_EQ(m.histograms().at("h").count(), 1u);
}

TEST(MetricsRegistry, MergeAddsCountersAdoptsWrittenGauges) {
  MetricsRegistry a;
  a.counter("shared").add(3);
  a.counter("only_a").add(1);
  a.gauge("g").set(1.0);
  a.gauge("untouched_in_b").set(9.0);
  a.histogram("h").record(10);

  MetricsRegistry b;
  b.counter("shared").add(5);
  b.counter("only_b").add(2);
  b.gauge("g").set(4.0);
  b.gauge("untouched_in_b");  // created but never set
  b.histogram("h").record(1000);

  a.merge(b);
  EXPECT_EQ(a.counters().at("shared").value, 8u);
  EXPECT_EQ(a.counters().at("only_a").value, 1u);
  EXPECT_EQ(a.counters().at("only_b").value, 2u);
  // Gauge written on both sides: last (merged-in) writer wins.
  EXPECT_EQ(a.gauges().at("g").value, 4.0);
  // Gauge never set in b keeps a's value.
  EXPECT_EQ(a.gauges().at("untouched_in_b").value, 9.0);
  EXPECT_EQ(a.histograms().at("h").count(), 2u);
  EXPECT_EQ(a.histograms().at("h").sum(), 1010u);
}

TEST(MetricsRegistry, JsonIsNameOrderedRegardlessOfTouchOrder) {
  MetricsRegistry forward;
  forward.counter("alpha").add(1);
  forward.counter("beta").add(2);
  forward.histogram("h1").record(5);
  MetricsRegistry reverse;
  reverse.histogram("h1").record(5);
  reverse.counter("beta").add(2);
  reverse.counter("alpha").add(1);
  EXPECT_EQ(forward.to_json(), reverse.to_json());
  const std::string j = forward.to_json();
  EXPECT_LT(j.find("\"alpha\""), j.find("\"beta\""));
}

TEST(MetricsRegistry, HistogramJsonExportsExactMinMax) {
  // min/max in the JSON export are the exact recorded extremes, not bucket
  // bounds — the validators and the latency reports rely on that.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed * 131);
    MetricsRegistry m;
    std::uint64_t lo = ~0ULL;
    std::uint64_t hi = 0;
    const int n = 1 + static_cast<int>(rng.next_u64() % 400);
    for (int i = 0; i < n; ++i) {
      // Keep values below 2^48 so the JSON number round-trips through
      // double without rounding — the comparison stays exact.
      const std::uint64_t v = rng.next_u64() >> (16 + rng.next_u64() % 48);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      m.histogram("h").record(v);
    }
    ASSERT_EQ(m.histogram("h").min(), lo) << "seed " << seed;
    ASSERT_EQ(m.histogram("h").max(), hi) << "seed " << seed;
    const auto doc = testjson::parse(m.to_json());
    const auto& h = doc.at("histograms").at("h");
    EXPECT_EQ(h.at("min").num(), static_cast<double>(lo)) << "seed " << seed;
    EXPECT_EQ(h.at("max").num(), static_cast<double>(hi)) << "seed " << seed;
  }
}

// --------------------------------------------------------------------------
// Property: run-stamped merge is permutation-invariant
// --------------------------------------------------------------------------

// The experiment runner merges per-run registries in whatever order worker
// threads finish. Counters and histograms are commutative by construction;
// gauges carry a run stamp (merge(other, other_run)) so "last writer" means
// highest run index, not latest wall-clock arrival. Property: any
// permutation of merges yields the identical registry.
TEST(MetricsRegistry, MergePermutationInvariantOverSeededRuns) {
  constexpr int kIterations = 10'000;
  const std::vector<std::string> gauge_names = {"g.a", "g.b", "g.c"};
  const std::vector<std::string> counter_names = {"c.a", "c.b"};
  for (std::uint64_t seed = 1; seed <= kIterations; ++seed) {
    Rng rng(seed * 2654435761u);
    const int runs = 2 + static_cast<int>(rng.next_u64() % 4);

    // Build per-run registries; track the expected gauge winners.
    std::vector<MetricsRegistry> regs(static_cast<std::size_t>(runs));
    std::vector<double> expect_gauge(gauge_names.size(), 0.0);
    std::vector<int> expect_run(gauge_names.size(), -1);
    std::vector<std::uint64_t> expect_counter(counter_names.size(), 0);
    for (int r = 0; r < runs; ++r) {
      for (std::size_t g = 0; g < gauge_names.size(); ++g) {
        if (rng.next_u64() % 2 == 0) continue;  // this run never sets it
        const double v = static_cast<double>(rng.next_u64() % 1000);
        regs[static_cast<std::size_t>(r)].gauge(gauge_names[g]).set(v);
        if (r >= expect_run[g]) {
          expect_run[g] = r;
          expect_gauge[g] = v;
        }
      }
      for (std::size_t c = 0; c < counter_names.size(); ++c) {
        const std::uint64_t v = rng.next_u64() % 100;
        regs[static_cast<std::size_t>(r)].counter(counter_names[c]).add(v);
        expect_counter[c] += v;
      }
    }

    // Merge in a random permutation and in reverse order.
    std::vector<int> order(static_cast<std::size_t>(runs));
    for (int r = 0; r < runs; ++r) order[static_cast<std::size_t>(r)] = r;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_u64() % i]);
    }
    MetricsRegistry shuffled;
    for (const int r : order) {
      shuffled.merge(regs[static_cast<std::size_t>(r)], r);
    }
    MetricsRegistry reversed;
    for (int r = runs - 1; r >= 0; --r) {
      reversed.merge(regs[static_cast<std::size_t>(r)], r);
    }

    for (std::size_t g = 0; g < gauge_names.size(); ++g) {
      if (expect_run[g] < 0) continue;
      ASSERT_EQ(shuffled.gauges().at(gauge_names[g]).value, expect_gauge[g])
          << "seed " << seed;
    }
    for (std::size_t c = 0; c < counter_names.size(); ++c) {
      ASSERT_EQ(shuffled.counters().at(counter_names[c]).value,
                expect_counter[c])
          << "seed " << seed;
    }
    ASSERT_EQ(shuffled.to_json(), reversed.to_json()) << "seed " << seed;
  }
}

// --------------------------------------------------------------------------
// Round-trip: metrics JSON through the ordered bench_json writer
// --------------------------------------------------------------------------

TEST(MetricsRegistry, JsonRoundTripsThroughBenchJsonWriter) {
  MetricsRegistry m;
  m.counter("epoch.passes").add(42);
  m.counter("balance.migrations").add(7);
  m.gauge("sense.healthy_fraction").set(0.875);
  for (std::uint64_t v : {100ULL, 250ULL, 900ULL, 12000ULL}) {
    m.histogram("epoch.sense_ns").record(v);
  }

  const auto doc = testjson::parse(m.to_json());
  ASSERT_TRUE(doc.is_object());

  // Re-emit every exported number through the ordered bench_json writer
  // (the BENCH_*.json serializer) and parse it back: values must survive
  // both serializers bit-for-bit at their stated precision.
  bench::Json j;
  j.begin_object();
  j.begin_object("counters");
  for (const auto& [name, c] : m.counters()) {
    j.field(name, static_cast<unsigned long long>(c.value));
  }
  j.end_object();
  j.begin_object("gauges");
  for (const auto& [name, g] : m.gauges()) {
    j.field(name, g.value);
  }
  j.end_object();
  j.begin_object("histograms");
  for (const auto& [name, h] : m.histograms()) {
    j.begin_object(name)
        .field("count", static_cast<unsigned long long>(h.count()))
        .field("sum", static_cast<unsigned long long>(h.sum()))
        .field("p99", static_cast<unsigned long long>(h.quantile(0.99)))
        .end_object();
  }
  j.end_object();
  j.end_object();
  const auto rt = testjson::parse(j.str());

  for (const auto& [name, c] : m.counters()) {
    EXPECT_EQ(doc.at("counters").at(name).num(),
              static_cast<double>(c.value));
    EXPECT_EQ(rt.at("counters").at(name).num(),
              static_cast<double>(c.value));
  }
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("sense.healthy_fraction").num(), 0.875);
  EXPECT_DOUBLE_EQ(rt.at("gauges").at("sense.healthy_fraction").num(), 0.875);
  const auto& h = m.histograms().at("epoch.sense_ns");
  EXPECT_EQ(doc.at("histograms").at("epoch.sense_ns").at("count").num(),
            static_cast<double>(h.count()));
  EXPECT_EQ(rt.at("histograms").at("epoch.sense_ns").at("sum").num(),
            static_cast<double>(h.sum()));
  EXPECT_EQ(rt.at("histograms").at("epoch.sense_ns").at("p99").num(),
            static_cast<double>(h.quantile(0.99)));
}

}  // namespace
}  // namespace sb::obs
