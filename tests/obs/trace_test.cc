#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "mini_json.h"

namespace sb::obs {
namespace {

// --------------------------------------------------------------------------
// Ring buffer
// --------------------------------------------------------------------------

TEST(EpochTracer, InternIsIdempotent) {
  EpochTracer t(16);
  const auto a = t.intern("sense");
  const auto b = t.intern("predict");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.intern("sense"), a);
  EXPECT_EQ(t.names().size(), 2u);
}

TEST(EpochTracer, RecordsSpansAndInstantsInSeqOrder) {
  EpochTracer t(16);
  t.span("sense", 1000, 50, 0);
  t.instant("migration", 1100, 0, {{"tid", 3.0}, {"src", 0.0}, {"dst", 2.0}});
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.events.size(), 2u);
  EXPECT_EQ(snap.name_of(snap.events[0].name), "sense");
  EXPECT_EQ(snap.events[0].phase, 'X');
  EXPECT_EQ(snap.events[0].dur_ns, 50u);
  EXPECT_EQ(snap.events[1].phase, 'i');
  EXPECT_EQ(snap.events[1].nargs, 3);
  EXPECT_EQ(snap.name_of(snap.events[1].args[0].key), "tid");
  EXPECT_EQ(snap.events[1].args[2].value, 2.0);
  EXPECT_LT(snap.events[0].seq, snap.events[1].seq);
}

TEST(EpochTracer, ExcessArgsAreTruncatedToFour) {
  EpochTracer t(4);
  t.instant("x", 0, 0,
            {{"a", 1.0}, {"b", 2.0}, {"c", 3.0}, {"d", 4.0}, {"e", 5.0}});
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.events.size(), 1u);
  EXPECT_EQ(snap.events[0].nargs, 4);
}

TEST(EpochTracer, OverflowDropsOldestAndCountsDropped) {
  constexpr std::size_t kCap = 8;
  EpochTracer t(kCap);
  for (std::uint64_t i = 0; i < 20; ++i) {
    t.span("ev", i * 100, 10, i);
  }
  EXPECT_EQ(t.size(), kCap);
  EXPECT_EQ(t.recorded(), 20u);
  EXPECT_EQ(t.dropped(), 20u - kCap);

  const auto snap = t.snapshot();
  EXPECT_EQ(snap.dropped, 20u - kCap);
  ASSERT_EQ(snap.events.size(), kCap);
  // The newest kCap events survive, oldest → newest.
  for (std::size_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(snap.events[i].seq, 20 - kCap + i);
  }
  EXPECT_TRUE(std::is_sorted(snap.events.begin(), snap.events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.seq < b.seq;
                             }));
}

// --------------------------------------------------------------------------
// Chrome export
// --------------------------------------------------------------------------

RunObs make_run(int run, const std::string& label, std::uint64_t nepochs,
                std::size_t capacity = 1 << 10) {
  EpochTracer t(capacity);
  for (std::uint64_t e = 0; e < nepochs; ++e) {
    const std::uint64_t base = e * 60'000'000;
    t.span("sense", base, 1000, e);
    t.span("predict", base + 1000, 2000, e);
    t.span("balance", base + 3000, 4000, e, {{"migrations", 1.0}});
    t.instant("migration", base + 7000, e, {{"tid", double(run)}});
  }
  RunObs r;
  r.run = run;
  r.label = label;
  r.trace_enabled = true;
  r.trace = t.snapshot();
  return r;
}

TEST(ChromeTrace, ParsesAndCarriesSummaryBlock) {
  const RunObs r = make_run(0, "smartbalance", 3);
  std::ostringstream os;
  write_chrome_trace(os, {&r});
  const auto doc = testjson::parse(os.str());
  ASSERT_TRUE(doc.contains("traceEvents"));
  // 3 epochs x 4 events + 1 process_name metadata record.
  EXPECT_EQ(doc.at("traceEvents").size(), 13u);
  EXPECT_EQ(doc.at("smartbalance").at("runs").num(), 1.0);
  EXPECT_EQ(doc.at("smartbalance").at("events").num(), 12.0);
  EXPECT_EQ(doc.at("smartbalance").at("dropped_events").num(), 0.0);
  const auto& meta = doc.at("traceEvents").at(0);
  EXPECT_EQ(meta.at("ph").str(), "M");
  EXPECT_EQ(meta.at("args").at("name").str(), "smartbalance");
  // Spans convert ts to microseconds: epoch 1's sense starts at 60000 us.
  bool found = false;
  for (const auto& ev : doc.at("traceEvents").arr()) {
    if (ev.at("ph").str() == "X" && ev.at("name").str() == "sense" &&
        ev.at("args").at("epoch").num() == 1.0) {
      EXPECT_DOUBLE_EQ(ev.at("ts").num(), 60000.0);
      EXPECT_DOUBLE_EQ(ev.at("dur").num(), 1.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ChromeTrace, DroppedEventsSurfaceInSummary) {
  RunObs r = make_run(0, "r", 10, /*capacity=*/16);
  ASSERT_GT(r.trace.dropped, 0u);
  std::ostringstream os;
  write_chrome_trace(os, {&r});
  const auto doc = testjson::parse(os.str());
  EXPECT_EQ(doc.at("smartbalance").at("dropped_events").num(),
            static_cast<double>(r.trace.dropped));
}

TEST(ChromeTrace, OutputIsIndependentOfRunOrderPassedIn) {
  // The merged export is keyed by the stamped run index, so shuffling the
  // pointer order (as --jobs completion order would) changes nothing.
  const RunObs r0 = make_run(0, "baseline", 2);
  const RunObs r1 = make_run(1, "smartbalance-eq11", 3);
  const RunObs r2 = make_run(2, "smartbalance", 1);
  std::ostringstream in_order, shuffled;
  write_chrome_trace(in_order, {&r0, &r1, &r2});
  write_chrome_trace(shuffled, {&r2, &r0, &r1});
  EXPECT_EQ(in_order.str(), shuffled.str());

  // Events are grouped per run (ascending pid), each group sorted by
  // (epoch, seq).
  const auto doc = testjson::parse(in_order.str());
  int last_pid = -1;
  std::uint64_t last_epoch = 0;
  for (const auto& ev : doc.at("traceEvents").arr()) {
    if (ev.at("ph").str() == "M") continue;
    const int pid = static_cast<int>(ev.at("pid").num());
    const auto epoch = static_cast<std::uint64_t>(
        ev.at("args").at("epoch").num());
    if (pid != last_pid) {
      EXPECT_GT(pid, last_pid);
      last_pid = pid;
    } else {
      EXPECT_GE(epoch, last_epoch);
    }
    last_epoch = epoch;
  }
  EXPECT_EQ(last_pid, 2);
}

TEST(ChromeTrace, NullRunsAreSkipped) {
  const RunObs r = make_run(0, "only", 1);
  std::ostringstream os;
  write_chrome_trace(os, {nullptr, &r, nullptr});
  const auto doc = testjson::parse(os.str());
  EXPECT_EQ(doc.at("smartbalance").at("runs").num(), 1.0);
}

TEST(ChromeTrace, UnwritablePathThrows) {
  const RunObs r = make_run(0, "x", 1);
  EXPECT_THROW(
      write_chrome_trace_file("/nonexistent-dir/trace.json", {&r}),
      std::runtime_error);
}

// --------------------------------------------------------------------------
// Metrics merge across runs
// --------------------------------------------------------------------------

TEST(MergeMetrics, SubmissionOrderNotPointerOrder) {
  RunObs a, b;
  a.run = 0;
  a.metrics_enabled = true;
  a.metrics.counter("epoch.passes").add(10);
  a.metrics.gauge("g").set(1.0);
  b.run = 1;
  b.metrics_enabled = true;
  b.metrics.counter("epoch.passes").add(5);
  b.metrics.gauge("g").set(2.0);

  const MetricsRegistry fwd = merge_metrics({&a, &b});
  const MetricsRegistry rev = merge_metrics({&b, &a});
  EXPECT_EQ(fwd.counters().at("epoch.passes").value, 15u);
  EXPECT_EQ(rev.counters().at("epoch.passes").value, 15u);
  // Gauge adoption follows run order even when pointers are reversed.
  EXPECT_EQ(fwd.gauges().at("g").value, 2.0);
  EXPECT_EQ(rev.gauges().at("g").value, 2.0);
}

}  // namespace
}  // namespace sb::obs
