// End-to-end prediction-audit flight recorder: an audited SmartBalance run
// is bit-identical to the golden path, its export is a byte-level
// deterministic function of the simulated runs (invariant across --jobs),
// its online residuals agree with the Fig. 6 offline prediction-error
// methodology, and the drift detector fires under injected sensor noise but
// never on a clean run.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "core/smart_balance.h"
#include "core/trainer.h"
#include "fault/fault_plan.h"
#include "mini_json.h"
#include "obs/audit_writer.h"
#include "obs/sink.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/runner.h"
#include "sim/simulation.h"

namespace sb::sim {
namespace {

SimulationConfig base_cfg() {
  SimulationConfig cfg;
  cfg.duration = milliseconds(600);
  cfg.seed = 1234;
  return cfg;
}

SimulationResult run_smart(SimulationConfig cfg,
                           core::SmartBalanceConfig sc = {}) {
  const auto platform = arch::Platform::quad_heterogeneous();
  Simulation s(platform, cfg);
  s.set_balancer(smartbalance_factory(sc)(s));
  s.add_mix(5, 1);  // 4-core-type PARSEC mix, the sbaudit worked example
  return s.run();
}

TEST(AuditIntegration, RecorderIsReadOnly) {
  // The flight recorder must not change a single simulated number.
  const SimulationResult plain = run_smart(base_cfg());
  SimulationConfig cfg = base_cfg();
  cfg.obs.audit = true;
  const SimulationResult audited = run_smart(cfg);
  EXPECT_EQ(plain.instructions, audited.instructions);
  EXPECT_EQ(plain.migrations, audited.migrations);
  EXPECT_DOUBLE_EQ(plain.ips_per_watt, audited.ips_per_watt);
  EXPECT_DOUBLE_EQ(plain.energy_j, audited.energy_j);
}

TEST(AuditIntegration, LedgersPopulateAndRideTheJsonReport) {
  SimulationConfig cfg = base_cfg();
  cfg.obs.audit = true;
  const SimulationResult r = run_smart(cfg);
  ASSERT_NE(r.obs, nullptr);
  ASSERT_TRUE(r.obs->audit_enabled);
  const obs::AuditSnapshot& a = r.obs->audit;
  EXPECT_GT(a.predictions, 0u);
  EXPECT_GT(a.joined, 0u);
  EXPECT_FALSE(a.threads.empty());
  EXPECT_FALSE(a.epochs.empty());
  EXPECT_FALSE(a.drift_states.empty());
  // Most passes validate one epoch later on this clean workload.
  int realized = 0;
  for (const auto& e : a.epochs) realized += e.realized_valid;
  EXPECT_GT(realized, 0);

  const auto doc = testjson::parse(to_json(r));
  ASSERT_TRUE(doc.contains("audit"));
  EXPECT_EQ(doc.at("audit").at("joined").num(), static_cast<double>(a.joined));
  EXPECT_EQ(doc.at("audit").at("thread_records").num(),
            static_cast<double>(a.threads.size()));
}

TEST(AuditIntegration, MergedExportIsByteIdenticalAcrossJobs) {
  SimulationConfig cfg = base_cfg();
  cfg.duration = milliseconds(300);
  cfg.obs.audit = true;
  std::vector<ExperimentSpec> specs;
  for (const std::string bench : {"IMB_HTHI", "IMB_MTMI", "bodytrack"}) {
    for (const char* policy : {"vanilla", "smartbalance"}) {
      ExperimentSpec spec;
      spec.platform = arch::Platform::quad_heterogeneous();
      spec.cfg = cfg;
      spec.workload = [bench](Simulation& s) { s.add_benchmark(bench, 4); };
      spec.policy = policy == std::string("vanilla") ? vanilla_factory()
                                                     : smartbalance_factory();
      spec.label = bench + "/" + policy;
      specs.push_back(std::move(spec));
    }
  }

  auto merged = [&](int threads) {
    ExperimentRunner::Config rc;
    rc.threads = threads;
    const BatchResult batch = ExperimentRunner(rc).run(specs);
    std::vector<const obs::RunObs*> runs;
    for (const auto& r : batch.runs) {
      EXPECT_TRUE(r.ok()) << r.error;
      if (r.result.obs) runs.push_back(r.result.obs.get());
    }
    std::ostringstream os;
    obs::write_audit(os, runs);
    return os.str();
  };

  // The export carries no host clocks, so unlike the Chrome trace this is
  // full byte identity, not shape identity.
  const std::string seq = merged(1);
  const std::string par = merged(8);
  EXPECT_EQ(seq, par);
  EXPECT_NE(seq.find("#summary runs=6"), std::string::npos);
}

TEST(AuditIntegration, OnlineResidualsAgreeWithFig6Methodology) {
  SimulationConfig cfg = base_cfg();
  cfg.duration = milliseconds(3000);
  cfg.obs.audit = true;
  const SimulationResult r = run_smart(cfg);
  ASSERT_NE(r.obs, nullptr);
  const obs::AuditSnapshot& a = r.obs->audit;
  ASSERT_GT(a.threads.size(), 20u);

  double gips_err = 0, power_err = 0;
  for (const auto& t : a.threads) {
    gips_err += std::abs(t.gips_err);
    power_err += std::abs(t.power_err);
  }
  const double online_perf_pct = 100.0 * gips_err / a.threads.size();
  const double online_power_pct = 100.0 * power_err / a.threads.size();

  // The Fig. 6 in-sample error of the same predictor on the training
  // profiles. The online numbers measure the predictor on live epochs —
  // same model, different sampling — so the check is a loose-band
  // cross-validation of the recorder's residual math, not an equality.
  const auto platform = arch::Platform::quad_heterogeneous();
  Simulation probe(platform, base_cfg());
  const perf::PerfModel& perf = probe.perf_model();
  const power::PowerModel& power = probe.power_model();
  const core::PredictorTrainer trainer(perf, power);
  const auto profiles = core::PredictorTrainer::default_training_profiles();
  const auto in_sample = trainer.evaluate(trainer.train(profiles), profiles);

  EXPECT_GT(online_perf_pct, 0.0);
  EXPECT_GT(online_power_pct, 0.0);
  EXPECT_LT(online_perf_pct, 15.0);  // paper ballpark: 4.2% offline
  EXPECT_LT(online_power_pct, 15.0);  // paper ballpark: 5% offline
  EXPECT_LT(online_perf_pct, in_sample.avg_perf_err_pct + 10.0);
  EXPECT_LT(online_power_pct, in_sample.avg_power_err_pct + 10.0);
}

TEST(AuditIntegration, DriftDetectorSilentOnCleanRun) {
  SimulationConfig cfg = base_cfg();
  cfg.duration = milliseconds(3000);
  cfg.obs.audit = true;
  const SimulationResult r = run_smart(cfg);
  ASSERT_NE(r.obs, nullptr);
  EXPECT_TRUE(r.obs->audit.drift_events.empty());
  const double threshold = obs::AuditConfig{}.drift_threshold;
  for (const auto& st : r.obs->audit.drift_states) {
    EXPECT_EQ(st.active, 0);
    EXPECT_LT(st.ewma_gips, threshold);
    EXPECT_LT(st.ewma_power, threshold);
  }
}

TEST(AuditIntegration, DriftDetectorFiresUnderNoisyPowerFaults) {
  SimulationConfig cfg = base_cfg();
  cfg.duration = milliseconds(3000);
  cfg.obs.audit = true;
  core::SmartBalanceConfig sc;
  // Heavy gaussian noise on the power rails at a high per-epoch rate, with
  // the sensing defenses forced off so the polluted samples reach the
  // recorder (the ablation arm of the resilience sweep).
  sc.fault_plan = fault::FaultPlan::parse("noise:0.8:8", 0xfa517u);
  sc.defenses = core::SmartBalanceConfig::Defenses::kOff;
  const SimulationResult r = run_smart(cfg, sc);
  ASSERT_NE(r.obs, nullptr);
  EXPECT_GT(r.faults_injected, 0u);
  EXPECT_FALSE(r.obs->audit.drift_events.empty());
}

TEST(AuditIntegration, DegradeOnDriftEscalatesOnlyWithTheRecorder) {
  core::SmartBalanceConfig sc;
  sc.fault_plan = fault::FaultPlan::parse("noise:0.8:8", 0xfa517u);
  sc.defenses = core::SmartBalanceConfig::Defenses::kOff;
  sc.degrade_on_drift = true;

  SimulationConfig long_cfg = base_cfg();
  long_cfg.duration = milliseconds(3000);

  // Without the recorder there is no drift signal: the knob is inert and
  // the undefended run never degrades.
  const SimulationResult inert = run_smart(long_cfg, sc);
  EXPECT_EQ(inert.degraded_passes, 0u);

  SimulationConfig cfg = long_cfg;
  cfg.obs.audit = true;
  const SimulationResult escalated = run_smart(cfg, sc);
  EXPECT_GT(escalated.degraded_passes, 0u);
  ASSERT_NE(escalated.obs, nullptr);
  int degraded_epochs = 0;
  for (const auto& e : escalated.obs->audit.epochs) {
    degraded_epochs += e.degraded;
  }
  EXPECT_GT(degraded_epochs, 0);
}

}  // namespace
}  // namespace sb::sim
