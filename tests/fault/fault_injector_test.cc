#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace sb::fault {
namespace {

os::EpochSample make_sample(ThreadId tid, CoreId core) {
  os::EpochSample s;
  s.tid = tid;
  s.core = core;
  s.counters.inst_total = 1'000'000 + static_cast<std::uint64_t>(tid);
  s.counters.cy_busy = 2'000'000;
  s.counters.cy_idle = 500'000;
  s.counters.inst_mem = 300'000;
  s.counters.inst_branch = 100'000;
  s.counters.l1d_access = 290'000;
  s.counters.l1d_miss = 9'000;
  s.energy_j = 0.01;
  s.runtime = milliseconds(50);
  s.util = 0.8;
  return s;
}

std::vector<os::EpochSample> make_epoch(int n) {
  std::vector<os::EpochSample> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(make_sample(static_cast<ThreadId>(i + 1),
                              static_cast<CoreId>(i % 4)));
  }
  return out;
}

TEST(FaultInjector, EmptyPlanIsIdentity) {
  FaultInjector inj{FaultPlan{}};
  auto samples = make_epoch(8);
  const auto before = samples;
  for (std::uint64_t e = 1; e <= 20; ++e) {
    inj.begin_epoch(e);
    inj.corrupt(samples);
    EXPECT_EQ(inj.on_migrate(1, 0, 1), FaultInjector::Decision::kAllow);
    EXPECT_DOUBLE_EQ(inj.transform_energy(0, 0.5), 0.5);
  }
  ASSERT_EQ(samples.size(), before.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].counters.inst_total, before[i].counters.inst_total);
    EXPECT_DOUBLE_EQ(samples[i].energy_j, before[i].energy_j);
  }
  EXPECT_EQ(inj.stats().total(), 0u);
}

TEST(FaultInjector, DecisionsArePureFunctionsOfKey) {
  const auto plan = FaultPlan::uniform(0.3, /*seed=*/42);
  FaultInjector a{plan}, b{plan};
  // Drive b through a *different* call order/history than a: injection must
  // depend only on (seed, class, epoch, target), not on call sequence.
  for (std::uint64_t e = 1; e <= 30; ++e) {
    b.begin_epoch(e);
    (void)b.transform_energy(3, 1.0);
  }
  for (std::uint64_t e = 1; e <= 30; ++e) {
    a.begin_epoch(e);
    b.begin_epoch(e);
    for (ThreadId t = 1; t <= 16; ++t) {
      EXPECT_EQ(a.on_migrate(t, 0, 1), b.on_migrate(t, 0, 1))
          << "epoch " << e << " tid " << t;
    }
    EXPECT_EQ(a.core_blacked_out(2), b.core_blacked_out(2)) << "epoch " << e;
  }
}

TEST(FaultInjector, SeedChangesDecisions) {
  FaultInjector a{FaultPlan::uniform(0.3, 1)};
  FaultInjector b{FaultPlan::uniform(0.3, 2)};
  int differ = 0;
  for (std::uint64_t e = 1; e <= 50; ++e) {
    a.begin_epoch(e);
    b.begin_epoch(e);
    for (ThreadId t = 1; t <= 8; ++t) {
      if (a.on_migrate(t, 0, 1) != b.on_migrate(t, 0, 1)) ++differ;
    }
  }
  EXPECT_GT(differ, 0);
}

TEST(FaultInjector, WrapPushesFieldToCeiling) {
  FaultPlan plan;
  plan.set({FaultClass::kCounterWrap, 1.0, 1.0, 1});
  FaultInjector inj{plan};
  inj.begin_epoch(1);
  auto samples = make_epoch(4);
  inj.corrupt(samples);
  for (const auto& s : samples) {
    EXPECT_TRUE(s.counters.any_field_at_or_above(1ull << 31))
        << "tid " << s.tid;
  }
  EXPECT_EQ(inj.stats().of(FaultClass::kCounterWrap), 4u);
}

TEST(FaultInjector, SaturateClampsEveryField) {
  FaultPlan plan;
  plan.set({FaultClass::kCounterSaturate, 1.0, /*magnitude=*/1.0, 1});
  FaultInjector inj{plan};
  inj.begin_epoch(1);
  auto samples = make_epoch(2);
  // Push fields past the 2^24 ceiling so the clamp is observable.
  for (auto& s : samples) {
    s.counters.cy_busy = 100'000'000;
    s.counters.inst_total = 80'000'000;
  }
  inj.corrupt(samples);
  for (const auto& s : samples) {
    EXPECT_EQ(s.counters.cy_busy, 16'777'216u);
    EXPECT_EQ(s.counters.inst_total, 16'777'216u);
    EXPECT_EQ(s.counters.inst_mem, 300'000u);  // in-range fields untouched
  }
  EXPECT_EQ(inj.stats().of(FaultClass::kCounterSaturate), 2u);
}

TEST(FaultInjector, DuplicateReplaysPreviousEpoch) {
  FaultPlan plan;
  plan.set({FaultClass::kSampleDuplicate, 1.0, 1.0, 1});
  FaultInjector inj{plan};

  auto first = make_epoch(3);
  inj.begin_epoch(1);
  inj.corrupt(first);  // no previous epoch: nothing to duplicate
  EXPECT_EQ(inj.stats().of(FaultClass::kSampleDuplicate), 0u);

  auto second = make_epoch(3);
  for (auto& s : second) s.counters.inst_total += 777;
  inj.begin_epoch(2);
  inj.corrupt(second);
  EXPECT_EQ(inj.stats().of(FaultClass::kSampleDuplicate), 3u);
  for (std::size_t i = 0; i < second.size(); ++i) {
    // Replayed payload is epoch 1's pristine counters.
    EXPECT_EQ(second[i].counters.inst_total,
              1'000'000 + static_cast<std::uint64_t>(i + 1));
  }
}

TEST(FaultInjector, DropRemovesSamples) {
  FaultPlan plan;
  plan.set({FaultClass::kSampleDrop, 1.0, 1.0, 1});
  FaultInjector inj{plan};
  inj.begin_epoch(1);
  auto samples = make_epoch(5);
  inj.corrupt(samples);
  EXPECT_TRUE(samples.empty());
  EXPECT_EQ(inj.stats().of(FaultClass::kSampleDrop), 5u);
}

TEST(FaultInjector, BlackoutZeroesCountersAndEnergy) {
  FaultPlan plan;
  plan.set({FaultClass::kCoreBlackout, 1.0, 1.0, 2});
  FaultInjector inj{plan};
  inj.begin_epoch(1);
  EXPECT_TRUE(inj.core_blacked_out(0));
  auto samples = make_epoch(4);
  inj.corrupt(samples);
  for (const auto& s : samples) {
    EXPECT_TRUE(s.counters.empty()) << "tid " << s.tid;
    EXPECT_DOUBLE_EQ(s.energy_j, 0.0);
  }
  EXPECT_DOUBLE_EQ(inj.transform_energy(0, 1.0), 0.0);
}

TEST(FaultInjector, BlackoutPersistsForDuration) {
  // rate 0.5, duration 4: once a core is hit, it must stay blacked out for
  // the next duration-1 epochs as well.
  FaultPlan plan;
  plan.set({FaultClass::kCoreBlackout, 0.5, 1.0, 4});
  FaultInjector inj{plan};
  std::vector<bool> black;
  for (std::uint64_t e = 1; e <= 60; ++e) {
    inj.begin_epoch(e);
    black.push_back(inj.core_blacked_out(1));
  }
  // Verify persistence: a transition to "clear" implies no onset in the
  // preceding window, so any blackout run must last >= 1 and runs started
  // by a fresh onset extend at least while onsets recur; spot-check that
  // both states occur and that isolated one-epoch gaps inside a window
  // never happen (a gap needs 4 onset-free epochs).
  int transitions = 0;
  for (std::size_t i = 1; i < black.size(); ++i) {
    if (black[i] != black[i - 1]) ++transitions;
  }
  EXPECT_GT(transitions, 0);
  // With rate 0.5 and duration 4, the blacked-out fraction must far exceed
  // the onset rate.
  const auto on = static_cast<double>(std::count(black.begin(), black.end(), true));
  EXPECT_GT(on / static_cast<double>(black.size()), 0.7);
}

TEST(FaultInjector, StuckPowerRepeatsPreviousReading) {
  FaultPlan plan;
  plan.set({FaultClass::kPowerStuck, 1.0, 1.0, 1});
  FaultInjector inj{plan};
  inj.begin_epoch(1);
  // Always stuck: with no previous reading the rail reads 0 and never
  // updates its latch.
  EXPECT_DOUBLE_EQ(inj.transform_energy(0, 0.7), 0.0);
  EXPECT_DOUBLE_EQ(inj.transform_energy(0, 0.9), 0.0);

  FaultPlan half;
  half.set({FaultClass::kPowerStuck, 0.5, 1.0, 1});
  FaultInjector inj2{half};
  double last_good = 0.0;
  int stuck_seen = 0;
  for (std::uint64_t e = 1; e <= 40; ++e) {
    inj2.begin_epoch(e);
    const double in = static_cast<double>(e);
    const double out = inj2.transform_energy(0, in);
    if (out == in) {
      last_good = in;
    } else {
      EXPECT_DOUBLE_EQ(out, last_good) << "epoch " << e;
      ++stuck_seen;
    }
  }
  EXPECT_GT(stuck_seen, 5);
}

TEST(FaultInjector, NoisePerturbsEnergyDeterministically) {
  FaultPlan plan;
  plan.set({FaultClass::kPowerNoise, 1.0, /*magnitude=*/2.0, 1});
  FaultInjector a{plan}, b{plan};
  a.begin_epoch(3);
  b.begin_epoch(3);
  const double va = a.transform_energy(1, 1.0);
  const double vb = b.transform_energy(1, 1.0);
  EXPECT_DOUBLE_EQ(va, vb);
  EXPECT_GE(va, 0.0);
  // Across epochs the noise must actually vary.
  a.begin_epoch(4);
  EXPECT_NE(a.transform_energy(1, 1.0), va);
}

TEST(FaultInjector, MigrationRejectAndDelayCounted) {
  FaultPlan plan;
  plan.set({FaultClass::kMigrationReject, 1.0, 1.0, 1});
  FaultInjector rej{plan};
  rej.begin_epoch(1);
  EXPECT_EQ(rej.on_migrate(7, 0, 1), FaultInjector::Decision::kReject);
  EXPECT_EQ(rej.stats().of(FaultClass::kMigrationReject), 1u);

  FaultPlan dplan;
  dplan.set({FaultClass::kMigrationDelay, 1.0, 1.0, 1});
  FaultInjector del{dplan};
  del.begin_epoch(1);
  EXPECT_EQ(del.on_migrate(7, 0, 1), FaultInjector::Decision::kDefer);
  EXPECT_EQ(del.stats().of(FaultClass::kMigrationDelay), 1u);
}

TEST(FaultInjector, RatesApproximatelyHonored) {
  FaultPlan plan;
  plan.set({FaultClass::kMigrationReject, 0.2, 1.0, 1});
  FaultInjector inj{plan};
  int rejected = 0;
  const int kTrials = 4000;
  for (int e = 1; e <= kTrials / 8; ++e) {
    inj.begin_epoch(static_cast<std::uint64_t>(e));
    for (ThreadId t = 1; t <= 8; ++t) {
      if (inj.on_migrate(t, 0, 1) == FaultInjector::Decision::kReject) {
        ++rejected;
      }
    }
  }
  const double freq = static_cast<double>(rejected) / kTrials;
  EXPECT_NEAR(freq, 0.2, 0.03);
}

}  // namespace
}  // namespace sb::fault
