#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace sb::fault {
namespace {

TEST(FaultPlan, DefaultIsEmpty) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.specs().empty());
  EXPECT_EQ(plan.spec_of(FaultClass::kCounterWrap), nullptr);
}

TEST(FaultPlan, ClassNamesRoundTrip) {
  for (int i = 0; i < kNumFaultClasses; ++i) {
    const auto cls = static_cast<FaultClass>(i);
    FaultClass back{};
    ASSERT_TRUE(fault_class_from_name(fault_class_name(cls), &back))
        << fault_class_name(cls);
    EXPECT_EQ(back, cls);
  }
  FaultClass out{};
  EXPECT_FALSE(fault_class_from_name("bogus", &out));
}

TEST(FaultPlan, ParseGrammar) {
  const auto plan = FaultPlan::parse("wrap:0.05,noise:0.02:3.0,blackout:0.01:1:4");
  EXPECT_FALSE(plan.empty());
  ASSERT_NE(plan.spec_of(FaultClass::kCounterWrap), nullptr);
  EXPECT_DOUBLE_EQ(plan.spec_of(FaultClass::kCounterWrap)->rate, 0.05);
  ASSERT_NE(plan.spec_of(FaultClass::kPowerNoise), nullptr);
  EXPECT_DOUBLE_EQ(plan.spec_of(FaultClass::kPowerNoise)->magnitude, 3.0);
  ASSERT_NE(plan.spec_of(FaultClass::kCoreBlackout), nullptr);
  EXPECT_EQ(plan.spec_of(FaultClass::kCoreBlackout)->duration_epochs, 4);
  EXPECT_EQ(plan.spec_of(FaultClass::kSampleDrop), nullptr);
}

TEST(FaultPlan, ParseEmptyAndZeroRate) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  // Zero-rate entries are recorded but the plan still injects nothing.
  const auto plan = FaultPlan::parse("wrap:0");
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.spec_of(FaultClass::kCounterWrap), nullptr);
}

TEST(FaultPlan, ParseRejectsMalformed) {
  EXPECT_THROW(FaultPlan::parse("nope:0.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("wrap"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("wrap:1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("wrap:-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("wrap:0.1:nan"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("wrap:0.1:1:0"), std::invalid_argument);
}

TEST(FaultPlan, ToStringRoundTrips) {
  const auto plan = FaultPlan::parse("sat:0.1:2:1,delay:0.25");
  const auto again = FaultPlan::parse(plan.to_string());
  ASSERT_EQ(again.specs().size(), plan.specs().size());
  for (const auto& s : plan.specs()) {
    const auto* other = again.spec_of(s.cls);
    ASSERT_NE(other, nullptr);
    EXPECT_DOUBLE_EQ(other->rate, s.rate);
    EXPECT_DOUBLE_EQ(other->magnitude, s.magnitude);
    EXPECT_EQ(other->duration_epochs, s.duration_epochs);
  }
}

TEST(FaultPlan, UniformCoversEveryClass) {
  const auto plan = FaultPlan::uniform(0.04);
  EXPECT_FALSE(plan.empty());
  for (int i = 0; i < kNumFaultClasses; ++i) {
    const auto cls = static_cast<FaultClass>(i);
    ASSERT_NE(plan.spec_of(cls), nullptr) << fault_class_name(cls);
  }
  EXPECT_DOUBLE_EQ(plan.spec_of(FaultClass::kCounterWrap)->rate, 0.04);
  EXPECT_DOUBLE_EQ(plan.spec_of(FaultClass::kCoreBlackout)->rate, 0.01);
  EXPECT_EQ(plan.spec_of(FaultClass::kCoreBlackout)->duration_epochs, 3);
  EXPECT_TRUE(FaultPlan::uniform(0.0).empty());
}

TEST(FaultPlan, LoadCsv) {
  const std::string path = ::testing::TempDir() + "/plan.csv";
  {
    std::ofstream f(path);
    f << "fault,rate,magnitude,duration_epochs\n"
      << "wrap,0.05,1,1\n"
      << "stuck,0.02,1,4\n";
  }
  const auto plan = FaultPlan::load_csv(path);
  ASSERT_NE(plan.spec_of(FaultClass::kCounterWrap), nullptr);
  ASSERT_NE(plan.spec_of(FaultClass::kPowerStuck), nullptr);
  EXPECT_EQ(plan.spec_of(FaultClass::kPowerStuck)->duration_epochs, 4);
  std::remove(path.c_str());
  EXPECT_THROW(FaultPlan::load_csv("/nonexistent/plan.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace sb::fault
