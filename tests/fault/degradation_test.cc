// Defense-layer behaviour: plausibility screens, outlier rejection, stale
// fallback, neutral-prior escalation, health tracking and policy-level
// degraded mode.
#include <gtest/gtest.h>

#include <vector>

#include "arch/platform.h"
#include "core/sensing.h"
#include "core/smart_balance.h"
#include "fault/fault_plan.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace sb::core {
namespace {

os::EpochSample good_sample(ThreadId tid, CoreId core) {
  os::EpochSample s;
  s.tid = tid;
  s.core = core;
  s.counters.inst_total = 1'000'000;
  s.counters.cy_busy = 2'000'000;
  s.counters.cy_idle = 500'000;
  s.counters.inst_mem = 300'000;
  s.counters.inst_branch = 100'000;
  s.counters.l1d_access = 290'000;
  s.counters.l1d_miss = 9'000;
  s.energy_j = 0.02;
  s.runtime = milliseconds(50);
  s.util = 0.8;
  return s;
}

SensingSubsystem::Config quiet_config(bool defended) {
  SensingSubsystem::Config cfg;
  cfg.counter_noise_sigma = 0;
  cfg.energy_noise_sigma = 0;
  cfg.smoothing = 0;
  cfg.defense.enabled = defended;
  return cfg;
}

class DefenseTest : public ::testing::Test {
 protected:
  arch::Platform platform_ = arch::Platform::quad_heterogeneous();
};

TEST_F(DefenseTest, DefensesOffPassesImplausibleDataThrough) {
  SensingSubsystem sensing(platform_, quiet_config(false), Rng(1));
  auto s = good_sample(1, 0);
  s.counters.inst_total = perf::HpcCounters::k32BitCeiling;  // wrap artefact
  const auto obs = sensing.observe({s});
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_TRUE(obs[0].measured);
  EXPECT_GT(obs[0].ipc, 100.0) << "undefended path must not filter";
  EXPECT_EQ(sensing.health().implausible_rejected, 0u);
}

TEST_F(DefenseTest, WrapArtefactRejectedAndStaleServed) {
  SensingSubsystem sensing(platform_, quiet_config(true), Rng(1));
  const auto good = sensing.observe({good_sample(1, 0)});
  ASSERT_TRUE(good[0].measured);
  const double good_ipc = good[0].ipc;

  auto bad = good_sample(1, 0);
  bad.counters.inst_total = perf::HpcCounters::k32BitCeiling;
  const auto obs = sensing.observe({bad});
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(sensing.health().implausible_rejected, 1u);
  EXPECT_EQ(sensing.health().stale_served, 1u);
  // Served observation is the cached good one, not the wrapped garbage.
  EXPECT_NEAR(obs[0].ipc, good_ipc, 1e-9);
}

TEST_F(DefenseTest, ImpossibleCycleRateRejected) {
  SensingSubsystem sensing(platform_, quiet_config(true), Rng(1));
  auto s = good_sample(1, 0);
  // 50 ms runtime cannot hold 4e9 cycles on any clock below 8 GHz; both
  // fields stay below the 32-bit ceiling so only the rate guard can fire.
  s.counters.cy_busy = 4'000'000'000ull;
  s.counters.inst_total = 1'600'000'000ull;  // keeps IPC plausible (0.4)
  (void)sensing.observe({s});
  EXPECT_EQ(sensing.health().implausible_rejected, 1u);
}

TEST_F(DefenseTest, StuckPowerRailRejected) {
  SensingSubsystem sensing(platform_, quiet_config(true), Rng(1));
  auto s = good_sample(1, 0);
  s.energy_j = 0.0;  // full epoch of execution, zero joules: dead rail
  (void)sensing.observe({s});
  EXPECT_EQ(sensing.health().implausible_rejected, 1u);
}

TEST_F(DefenseTest, OutlierRejectedAgainstMedianHistory) {
  auto cfg = quiet_config(true);
  cfg.defense.min_history = 3;
  SensingSubsystem sensing(platform_, cfg, Rng(1));
  for (int e = 0; e < 4; ++e) {
    const auto obs = sensing.observe({good_sample(1, 0)});
    EXPECT_TRUE(obs[0].measured);
  }
  EXPECT_EQ(sensing.health().outliers_rejected, 0u);

  // 20x the established throughput, but inside the physical envelope
  // (IPC 8 < ipc_max): only the outlier screen can catch it.
  auto burst = good_sample(1, 0);
  burst.counters.inst_total = 20'000'000;
  const auto obs = sensing.observe({burst});
  EXPECT_EQ(sensing.health().outliers_rejected, 1u);
  EXPECT_EQ(sensing.health().stale_served, 1u);
  EXPECT_LT(obs[0].ipc, 1.0) << "served from cache, not the burst";
}

TEST_F(DefenseTest, NeutralPriorAfterMaxStaleEpochs) {
  auto cfg = quiet_config(true);
  cfg.defense.max_stale_epochs = 3;
  SensingSubsystem sensing(platform_, cfg, Rng(1));
  (void)sensing.observe({good_sample(1, 0)});

  auto blackout = good_sample(1, 0);
  blackout.counters.reset();  // ran, but sensing read zeros
  for (int e = 0; e < 3; ++e) {
    const auto obs = sensing.observe({blackout});
    EXPECT_TRUE(obs[0].measured) << "within stale window, serve cache";
  }
  const auto obs = sensing.observe({blackout});
  EXPECT_FALSE(obs[0].measured) << "past the window, neutral prior";
  EXPECT_EQ(obs[0].instructions, 0u);
  EXPECT_GE(sensing.health().neutral_served, 1u);
  EXPECT_GE(sensing.health().stale_served, 3u);
}

TEST_F(DefenseTest, HealthyFractionTracksConfidenceDecay) {
  auto cfg = quiet_config(true);
  SensingSubsystem sensing(platform_, cfg, Rng(1));
  auto good = good_sample(1, 0);
  auto bad = good_sample(2, 1);
  bad.counters.inst_total = perf::HpcCounters::k32BitCeiling;
  (void)sensing.observe({good, bad});
  // One rejection: confidence 0.7 >= 0.5, both threads still healthy.
  EXPECT_DOUBLE_EQ(sensing.health().healthy_fraction, 1.0);
  (void)sensing.observe({good, bad});
  // Two rejections: 0.49 < 0.5 — thread 2 is now unhealthy.
  EXPECT_DOUBLE_EQ(sensing.health().healthy_fraction, 0.5);
}

TEST(Degradation, PolicyFallsBackUnderTotalBlackout) {
  sim::SimulationConfig cfg;
  cfg.duration = milliseconds(400);
  sim::Simulation sim(arch::Platform::quad_heterogeneous(), cfg);
  sim.add_benchmark("ferret", 4);

  core::SmartBalanceConfig sc;
  fault::FaultPlan plan;
  plan.set({fault::FaultClass::kCoreBlackout, 1.0, 1.0, 1});
  sc.fault_plan = plan;
  sim.set_balancer(sim::smartbalance_factory(sc)(sim));
  const auto r = sim.run();

  EXPECT_GT(r.faults_injected, 0u);
  EXPECT_GT(r.faults_detected, 0u);
  EXPECT_GT(r.degraded_passes, 0u) << "all sensors dark: must degrade";
  EXPECT_LT(r.healthy_fraction, 0.5);
  EXPECT_GT(r.instructions, 0u) << "the system keeps running regardless";
}

TEST(Degradation, RejectedMigrationsAreCountedAndHarmless) {
  sim::SimulationConfig cfg;
  cfg.duration = milliseconds(400);
  sim::Simulation sim(arch::Platform::quad_heterogeneous(), cfg);
  sim.add_benchmark("ferret", 4);

  core::SmartBalanceConfig sc;
  fault::FaultPlan plan;
  plan.set({fault::FaultClass::kMigrationReject, 1.0, 1.0, 1});
  sc.fault_plan = plan;
  sim.set_balancer(sim::smartbalance_factory(sc)(sim));
  const auto r = sim.run();

  EXPECT_GT(r.migrations_rejected, 0u);
  EXPECT_EQ(r.migrations, 0u) << "every balancer migration failed";
  EXPECT_GT(r.instructions, 0u);
}

TEST(Degradation, DeferredMigrationsLandNextEpoch) {
  sim::SimulationConfig cfg;
  cfg.duration = milliseconds(400);
  sim::Simulation sim(arch::Platform::quad_heterogeneous(), cfg);
  sim.add_benchmark("ferret", 4);

  core::SmartBalanceConfig sc;
  fault::FaultPlan plan;
  plan.set({fault::FaultClass::kMigrationDelay, 1.0, 1.0, 1});
  sc.fault_plan = plan;
  sim.set_balancer(sim::smartbalance_factory(sc)(sim));
  const auto r = sim.run();

  EXPECT_GT(r.migrations_deferred, 0u);
  EXPECT_GT(r.instructions, 0u);
}

TEST(Degradation, DefensesRecoverEfficiencyUnderFaults) {
  // The headline property, in miniature: under a moderate uniform fault
  // rate, the defended policy must do at least as well as the undefended
  // one (and both must keep running).
  sim::SimulationConfig cfg;
  cfg.duration = milliseconds(400);

  auto run_arm = [&](core::SmartBalanceConfig::Defenses defenses) {
    sim::Simulation sim(arch::Platform::octa_big_little(), cfg);
    sim.add_benchmark("bodytrack", 8);
    core::SmartBalanceConfig sc;
    sc.fault_plan = fault::FaultPlan::uniform(0.08);
    sc.defenses = defenses;
    sim.set_balancer(sim::smartbalance_factory(sc)(sim));
    return sim.run();
  };

  const auto defended = run_arm(core::SmartBalanceConfig::Defenses::kAuto);
  const auto undefended = run_arm(core::SmartBalanceConfig::Defenses::kOff);
  EXPECT_GT(defended.faults_detected, 0u);
  EXPECT_EQ(undefended.faults_detected, 0u);
  EXPECT_GT(defended.ips_per_watt, 0.95 * undefended.ips_per_watt);
}

}  // namespace
}  // namespace sb::core
