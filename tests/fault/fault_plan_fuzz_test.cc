// Grammar fuzz for FaultPlan::parse: ~10k seeded, deterministic mutations
// of valid specs plus raw garbage. The contract under test: parse() either
// returns a plan or throws std::invalid_argument — never any other
// exception type, never UB (the suite also runs under ASan/UBSan in CI).
//
// This harness caught the std::out_of_range leak from std::stod/std::stoi
// on over-range numerics ("wrap:1e999", duration fields past INT_MAX),
// fixed in fault_plan.cc by the parse_double/parse_int wrappers.
#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <typeinfo>
#include <vector>

namespace sb::fault {
namespace {

/// SplitMix64: deterministic mutation stream, independent of libc rand.
class Mutator {
 public:
  explicit Mutator(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  char random_char() {
    // Biased toward grammar-relevant bytes so mutations stay interesting.
    static const char kAlphabet[] =
        "0123456789.:,-+eE \tinfnanwrapsatdropdupstucknoisedelayreject"
        "blackout\0\x7f";
    return kAlphabet[below(sizeof(kAlphabet) - 1)];
  }

  std::string mutate(std::string s) {
    const int edits = 1 + static_cast<int>(below(4));
    for (int e = 0; e < edits; ++e) {
      switch (below(5)) {
        case 0:  // flip one byte
          if (!s.empty()) s[below(s.size())] = random_char();
          break;
        case 1:  // insert
          s.insert(s.begin() + static_cast<std::ptrdiff_t>(
                                   below(s.size() + 1)),
                   random_char());
          break;
        case 2:  // delete
          if (!s.empty()) s.erase(below(s.size()), 1);
          break;
        case 3:  // truncate
          if (!s.empty()) s.resize(below(s.size()));
          break;
        case 4:  // duplicate a slice onto the end
          if (!s.empty()) {
            const std::size_t at = below(s.size());
            s += s.substr(at, below(s.size() - at) + 1);
          }
          break;
      }
    }
    return s;
  }

 private:
  std::uint64_t state_;
};

const std::vector<std::string>& corpus() {
  static const std::vector<std::string> kCorpus = {
      "wrap:0.05",
      "wrap:0.05,noise:0.02:3",
      "sat:0.1:2.5",
      "drop:0.01,dup:0.01,stuck:0.02:1:4",
      "blackout:0.0125:1:3",
      "delay:0.5,reject:0.25",
      "noise:1:0:1024",
      "wrap:1e-3:0.5:7",
      "",
  };
  return kCorpus;
}

/// parse() must return or throw std::invalid_argument; nothing else.
void expect_contract(const std::string& input) {
  try {
    const FaultPlan plan = FaultPlan::parse(input, 0xfa517u);
    // Success: the plan must round-trip through its own to_string().
    const std::string canon = plan.to_string();
    const FaultPlan again = FaultPlan::parse(canon, 0xfa517u);
    EXPECT_EQ(again.to_string(), canon)
        << "unstable round-trip for input '" << input << "'";
    EXPECT_EQ(plan.empty(), again.empty());
  } catch (const std::invalid_argument&) {
    // Documented rejection path.
  } catch (const std::exception& e) {
    FAIL() << "parse('" << input << "') leaked "
           << typeid(e).name() << ": " << e.what();
  }
}

TEST(FaultPlanFuzz, TenThousandSeededMutations) {
  Mutator m(0x5eedf00dULL);
  int parsed = 0, rejected = 0;
  for (int i = 0; i < 10'000; ++i) {
    const std::string& base = corpus()[m.below(corpus().size())];
    const std::string input =
        m.below(10) == 0
            ? std::string(m.below(32), static_cast<char>(m.next() & 0xff))
            : m.mutate(base);
    try {
      (void)FaultPlan::parse(input, 1);
      ++parsed;
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
    expect_contract(input);
  }
  // The mutation stream must exercise both sides of the grammar.
  EXPECT_GT(parsed, 100) << "mutations never produced a valid spec";
  EXPECT_GT(rejected, 1000) << "mutations never produced an invalid spec";
}

TEST(FaultPlanFuzz, OverRangeNumericsAreInvalidArgumentNotOutOfRange) {
  // Regression for the fuzz finding: stod/stoi throw std::out_of_range on
  // these, which previously escaped parse()'s documented contract.
  for (const char* input :
       {"wrap:1e999", "wrap:1e-999", "sat:0.1:1e999",
        "wrap:0.1:1:99999999999999999999", "wrap:0.1:1:2147483648",
        "noise:9e307:1:1", "wrap:1e309"}) {
    EXPECT_THROW((void)FaultPlan::parse(input, 1), std::invalid_argument)
        << input;
  }
}

TEST(FaultPlanFuzz, ValidCorpusStillParses) {
  for (const std::string& input : corpus()) {
    EXPECT_NO_THROW((void)FaultPlan::parse(input, 1)) << input;
  }
}

TEST(FaultPlanFuzz, GrammarEdgeCases) {
  // Accepted: empty entries between commas are skipped.
  EXPECT_NO_THROW((void)FaultPlan::parse(",,wrap:0.1,,", 1));
  // Rejected: bad class, missing rate, too many fields, embedded NUL.
  EXPECT_THROW((void)FaultPlan::parse("warp:0.1", 1), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("wrap", 1), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("wrap:0.1:1:2:3", 1),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse(std::string("wrap:0.1\0x", 10), 1),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("wrap:nan", 1), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("wrap:inf", 1), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("wrap:-0.1", 1), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("sat:0.1:-1", 1), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("sat:0.1:nan", 1),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("wrap:0.1:1:0", 1),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("wrap:0.1:1:1025", 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace sb::fault
