// Fault-matrix determinism: a faulty batch is still a pure function of its
// specs. The same plan+seed must yield bit-identical results whether the
// batch runs on 1 worker or 8, and a zero-fault plan must be
// indistinguishable from no plan at all (the golden-CSV contract).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/platform.h"
#include "core/smart_balance.h"
#include "fault/fault_plan.h"
#include "sim/runner.h"

namespace sb::sim {
namespace {

ExperimentRunner runner_with(int threads) {
  ExperimentRunner::Config cfg;
  cfg.threads = threads;
  return ExperimentRunner(cfg);
}

std::vector<ExperimentSpec> faulty_batch(const std::string& plan_str,
                                         std::uint64_t fault_seed) {
  std::vector<ExperimentSpec> specs;
  const auto quad = arch::Platform::quad_heterogeneous();
  const auto octa = arch::Platform::octa_big_little();
  auto add = [&](const arch::Platform& p, std::uint64_t seed,
                 const std::string& bench, int threads,
                 core::SmartBalanceConfig::Defenses defenses) {
    core::SmartBalanceConfig sc;
    if (!plan_str.empty()) {
      sc.fault_plan = fault::FaultPlan::parse(plan_str);
      sc.fault_plan.seed = fault_seed;
    }
    sc.defenses = defenses;
    ExperimentSpec spec;
    spec.platform = p;
    spec.cfg.duration = milliseconds(60);
    spec.cfg.seed = seed;
    spec.workload = [bench, threads](Simulation& s) {
      s.add_benchmark(bench, threads);
    };
    spec.policy = smartbalance_factory(sc);
    spec.label = bench;
    specs.push_back(std::move(spec));
  };
  using D = core::SmartBalanceConfig::Defenses;
  add(quad, 1, "canneal", 4, D::kAuto);
  add(octa, 2, "bodytrack", 8, D::kAuto);
  add(quad, 3, "swaptions", 4, D::kOff);
  add(octa, 4, "x264_H_crew", 8, D::kAuto);
  add(quad, 5, "IMB_MTMI", 4, D::kOff);
  add(octa, 6, "ferret", 6, D::kAuto);
  return specs;
}

void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.balance_passes, b.balance_passes);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_DOUBLE_EQ(a.ips, b.ips);
  EXPECT_DOUBLE_EQ(a.ips_per_watt, b.ips_per_watt);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.faults_detected, b.faults_detected);
  EXPECT_EQ(a.faults_absorbed, b.faults_absorbed);
  EXPECT_EQ(a.degraded_passes, b.degraded_passes);
  EXPECT_EQ(a.migrations_rejected, b.migrations_rejected);
  EXPECT_EQ(a.migrations_deferred, b.migrations_deferred);
  EXPECT_DOUBLE_EQ(a.healthy_fraction, b.healthy_fraction);
  ASSERT_EQ(a.cores.size(), b.cores.size());
  for (std::size_t c = 0; c < a.cores.size(); ++c) {
    EXPECT_EQ(a.cores[c].instructions, b.cores[c].instructions) << "core " << c;
    EXPECT_DOUBLE_EQ(a.cores[c].energy_j, b.cores[c].energy_j) << "core " << c;
  }
  ASSERT_EQ(a.threads.size(), b.threads.size());
  for (std::size_t i = 0; i < a.threads.size(); ++i) {
    EXPECT_EQ(a.threads[i].instructions, b.threads[i].instructions)
        << "thread " << i;
    EXPECT_EQ(a.threads[i].migrations, b.threads[i].migrations)
        << "thread " << i;
  }
}

constexpr const char* kMatrixPlan =
    "wrap:0.05,sat:0.05,drop:0.05,dup:0.05,stuck:0.05,noise:0.05:1.5,"
    "delay:0.05,reject:0.05,blackout:0.02:1:3";

TEST(FaultMatrix, FaultyRunsBitIdenticalAcrossWorkerCounts) {
  const auto serial =
      runner_with(1).run(faulty_batch(kMatrixPlan, 0xfa517u));
  const auto parallel =
      runner_with(8).run(faulty_batch(kMatrixPlan, 0xfa517u));
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    ASSERT_TRUE(serial.runs[i].ok()) << serial.runs[i].error;
    ASSERT_TRUE(parallel.runs[i].ok()) << parallel.runs[i].error;
    SCOPED_TRACE(serial.runs[i].label);
    expect_identical(serial.runs[i].result, parallel.runs[i].result);
  }
  // The plan actually bites: at these rates a 60 ms run injects faults.
  std::uint64_t injected = 0;
  for (const auto& r : serial.runs) injected += r.result.faults_injected;
  EXPECT_GT(injected, 0u);
}

TEST(FaultMatrix, FaultSeedIsPartOfTheKey) {
  const auto a = runner_with(4).run(faulty_batch(kMatrixPlan, 1));
  const auto b = runner_with(4).run(faulty_batch(kMatrixPlan, 2));
  int differ = 0;
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    if (a.runs[i].result.instructions != b.runs[i].result.instructions ||
        a.runs[i].result.faults_injected != b.runs[i].result.faults_injected) {
      ++differ;
    }
  }
  EXPECT_GT(differ, 0) << "changing the fault seed must change trajectories";
}

TEST(FaultMatrix, ZeroFaultPlanMatchesNoPlanBitExactly) {
  // "wrap:0" parses to a plan that injects nothing; the policy must take
  // the exact same code path (no injector, sensing defenses off under
  // kAuto) as a config with no plan at all.
  const auto with_zero = runner_with(8).run(faulty_batch("wrap:0", 7));
  const auto without = runner_with(8).run(faulty_batch("", 7));
  ASSERT_EQ(with_zero.runs.size(), without.runs.size());
  for (std::size_t i = 0; i < with_zero.runs.size(); ++i) {
    ASSERT_TRUE(with_zero.runs[i].ok()) << with_zero.runs[i].error;
    ASSERT_TRUE(without.runs[i].ok()) << without.runs[i].error;
    SCOPED_TRACE(with_zero.runs[i].label);
    expect_identical(with_zero.runs[i].result, without.runs[i].result);
    EXPECT_EQ(with_zero.runs[i].result.faults_injected, 0u);
    EXPECT_EQ(with_zero.runs[i].result.degraded_passes, 0u);
  }
}

}  // namespace
}  // namespace sb::sim
