#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "os/vanilla_balancer.h"

namespace sb::sim {
namespace {

SimulationConfig quick_cfg(TimeNs duration = milliseconds(120)) {
  SimulationConfig cfg;
  cfg.duration = duration;
  cfg.label = "test";
  return cfg;
}

TEST(Simulation, MetricsInternallyConsistent) {
  Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
  s.set_balancer(std::make_unique<os::VanillaBalancer>());
  s.add_benchmark("ferret", 4);
  const auto r = s.run();

  EXPECT_EQ(r.simulated, milliseconds(120));
  EXPECT_GT(r.instructions, 0u);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_NEAR(r.ips, static_cast<double>(r.instructions) / 0.12, 1.0);
  EXPECT_NEAR(r.watts, r.energy_j / 0.12, 1e-9);
  EXPECT_NEAR(r.ips_per_watt, static_cast<double>(r.instructions) / r.energy_j,
              1.0);

  // Per-core sums equal the totals.
  std::uint64_t core_insts = 0;
  double core_energy = 0;
  for (const auto& c : r.cores) {
    core_insts += c.instructions;
    core_energy += c.energy_j;
  }
  EXPECT_EQ(core_insts, r.instructions);
  EXPECT_NEAR(core_energy, r.energy_j, 1e-9);

  // Per-thread sums equal totals too.
  std::uint64_t thread_insts = 0;
  for (const auto& t : r.threads) thread_insts += t.instructions;
  EXPECT_EQ(thread_insts, r.instructions);
  EXPECT_EQ(r.threads.size(), 4u);
}

TEST(Simulation, RunToCompletionStopsEarly) {
  auto cfg = quick_cfg(seconds(5));
  cfg.run_to_completion = true;
  Simulation s(arch::Platform::quad_heterogeneous(), cfg);
  s.set_balancer(std::make_unique<os::VanillaBalancer>());
  workload::ThreadBehavior tb;
  tb.name = "short";
  workload::WorkloadProfile p;
  tb.phases.push_back({p, 10'000'000});
  tb.total_instructions = 2'000'000;
  s.add_thread(tb);
  const auto r = s.run();
  EXPECT_LT(r.simulated, milliseconds(200));
  ASSERT_EQ(r.threads.size(), 1u);
  EXPECT_TRUE(r.threads[0].completed);
  EXPECT_LT(r.threads[0].completion_time, r.simulated + 1);
}

TEST(Simulation, RunTwiceThrows) {
  Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
  s.add_benchmark("vips", 1);
  s.run();
  EXPECT_THROW(s.run(), std::logic_error);
}

TEST(Simulation, AddMixSpawnsAllMembers) {
  Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
  s.add_mix(6, 2);  // 3 members × 2
  EXPECT_EQ(s.kernel().num_tasks(), 6u);
}

TEST(Simulation, DeterministicForSeed) {
  auto once = [] {
    Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
    s.set_balancer(std::make_unique<os::VanillaBalancer>());
    s.add_benchmark("bodytrack", 4);
    return s.run();
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.migrations, b.migrations);
}

TEST(Simulation, SeedChangesOutcome) {
  auto once = [](std::uint64_t seed) {
    auto cfg = quick_cfg();
    cfg.seed = seed;
    Simulation s(arch::Platform::quad_heterogeneous(), cfg);
    s.set_balancer(std::make_unique<os::VanillaBalancer>());
    s.add_benchmark("bodytrack", 4);
    return s.run();
  };
  EXPECT_NE(once(1).instructions, once(2).instructions);
}

TEST(Simulation, PrintResultMentionsHeadlineNumbers) {
  Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
  s.add_benchmark("dedup", 2);
  const auto r = s.run();
  std::ostringstream os;
  print_result(os, r);
  EXPECT_NE(os.str().find("MIPS/W"), std::string::npos);
  EXPECT_NE(os.str().find("Huge"), std::string::npos);
}

TEST(Simulation, EfficiencyRatio) {
  SimulationResult a, b;
  a.ips_per_watt = 150;
  b.ips_per_watt = 100;
  EXPECT_DOUBLE_EQ(efficiency_ratio(a, b), 1.5);
  b.ips_per_watt = 0;
  EXPECT_THROW(efficiency_ratio(a, b), std::invalid_argument);
}

TEST(Simulation, UnknownBenchmarkThrows) {
  Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
  EXPECT_THROW(s.add_benchmark("not-a-benchmark", 2), std::out_of_range);
}

}  // namespace
}  // namespace sb::sim
