#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "os/vanilla_balancer.h"

namespace sb::sim {
namespace {

SimulationConfig quick_cfg(TimeNs duration = milliseconds(120)) {
  SimulationConfig cfg;
  cfg.duration = duration;
  cfg.label = "test";
  return cfg;
}

TEST(Simulation, MetricsInternallyConsistent) {
  Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
  s.set_balancer(std::make_unique<os::VanillaBalancer>());
  s.add_benchmark("ferret", 4);
  const auto r = s.run();

  EXPECT_EQ(r.simulated, milliseconds(120));
  EXPECT_GT(r.instructions, 0u);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_NEAR(r.ips, static_cast<double>(r.instructions) / 0.12, 1.0);
  EXPECT_NEAR(r.watts, r.energy_j / 0.12, 1e-9);
  EXPECT_NEAR(r.ips_per_watt, static_cast<double>(r.instructions) / r.energy_j,
              1.0);

  // Per-core sums equal the totals.
  std::uint64_t core_insts = 0;
  double core_energy = 0;
  for (const auto& c : r.cores) {
    core_insts += c.instructions;
    core_energy += c.energy_j;
  }
  EXPECT_EQ(core_insts, r.instructions);
  EXPECT_NEAR(core_energy, r.energy_j, 1e-9);

  // Per-thread sums equal totals too.
  std::uint64_t thread_insts = 0;
  for (const auto& t : r.threads) thread_insts += t.instructions;
  EXPECT_EQ(thread_insts, r.instructions);
  EXPECT_EQ(r.threads.size(), 4u);
}

TEST(Simulation, RunToCompletionStopsEarly) {
  auto cfg = quick_cfg(seconds(5));
  cfg.run_to_completion = true;
  Simulation s(arch::Platform::quad_heterogeneous(), cfg);
  s.set_balancer(std::make_unique<os::VanillaBalancer>());
  workload::ThreadBehavior tb;
  tb.name = "short";
  workload::WorkloadProfile p;
  tb.phases.push_back({p, 10'000'000});
  tb.total_instructions = 2'000'000;
  s.add_thread(tb);
  const auto r = s.run();
  EXPECT_LT(r.simulated, milliseconds(200));
  ASSERT_EQ(r.threads.size(), 1u);
  EXPECT_TRUE(r.threads[0].completed);
  EXPECT_LT(r.threads[0].completion_time, r.simulated + 1);
}

TEST(Simulation, RunTwiceThrows) {
  Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
  s.add_benchmark("vips", 1);
  s.run();
  EXPECT_THROW(s.run(), std::logic_error);
}

TEST(Simulation, AddMixSpawnsAllMembers) {
  Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
  s.add_mix(6, 2);  // 3 members × 2
  EXPECT_EQ(s.kernel().num_tasks(), 6u);
}

TEST(Simulation, DeterministicForSeed) {
  auto once = [] {
    Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
    s.set_balancer(std::make_unique<os::VanillaBalancer>());
    s.add_benchmark("bodytrack", 4);
    return s.run();
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.migrations, b.migrations);
}

TEST(Simulation, SeedChangesOutcome) {
  auto once = [](std::uint64_t seed) {
    auto cfg = quick_cfg();
    cfg.seed = seed;
    Simulation s(arch::Platform::quad_heterogeneous(), cfg);
    s.set_balancer(std::make_unique<os::VanillaBalancer>());
    s.add_benchmark("bodytrack", 4);
    return s.run();
  };
  EXPECT_NE(once(1).instructions, once(2).instructions);
}

TEST(Simulation, PrintResultMentionsHeadlineNumbers) {
  Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
  s.add_benchmark("dedup", 2);
  const auto r = s.run();
  std::ostringstream os;
  print_result(os, r);
  EXPECT_NE(os.str().find("MIPS/W"), std::string::npos);
  EXPECT_NE(os.str().find("Huge"), std::string::npos);
}

TEST(Simulation, EfficiencyRatio) {
  SimulationResult a, b;
  a.ips_per_watt = 150;
  b.ips_per_watt = 100;
  EXPECT_DOUBLE_EQ(efficiency_ratio(a, b), 1.5);
  b.ips_per_watt = 0;
  EXPECT_THROW(efficiency_ratio(a, b), std::invalid_argument);
}

TEST(Simulation, UnknownBenchmarkThrows) {
  Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
  EXPECT_THROW(s.add_benchmark("not-a-benchmark", 2), std::out_of_range);
}

// --- Service mode (the fleet layer's incremental driving) ---

TEST(Simulation, ServiceModeMatchesBatchRunExactly) {
  auto batch = [] {
    Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
    s.set_balancer(std::make_unique<os::VanillaBalancer>());
    s.add_benchmark("ferret", 4);
    return s.run();
  };
  auto service = [](TimeNs chunk) {
    Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
    s.set_balancer(std::make_unique<os::VanillaBalancer>());
    s.add_benchmark("ferret", 4);
    s.begin_service();
    for (TimeNs t = 0; t < milliseconds(120); t += chunk) {
      s.advance_service(std::min(chunk, milliseconds(120) - t));
    }
    return s.finish_service();
  };
  // One advance_service over the whole window replays batch run() exactly.
  const auto a = batch();
  const auto b = service(milliseconds(120));
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.simulated, b.simulated);
  // Chunk boundaries split accounting segments, so a different quantum
  // shifts per-segment rounding — but for a FIXED quantum the results are
  // bit-reproducible (the fleet determinism contract) and the physics
  // stays within rounding noise of the batch run.
  for (const TimeNs chunk : {milliseconds(5), milliseconds(7)}) {
    const auto c = service(chunk);
    const auto d = service(chunk);
    EXPECT_EQ(c.instructions, d.instructions) << "chunk=" << chunk;
    EXPECT_DOUBLE_EQ(c.energy_j, d.energy_j) << "chunk=" << chunk;
    EXPECT_NEAR(static_cast<double>(c.instructions),
                static_cast<double>(a.instructions),
                0.01 * static_cast<double>(a.instructions))
        << "chunk=" << chunk;
    EXPECT_NEAR(c.energy_j, a.energy_j, 0.01 * a.energy_j)
        << "chunk=" << chunk;
  }
}

TEST(Simulation, AdmitBenchmarkMidServiceForksAndCapsInstructions) {
  Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
  s.set_balancer(std::make_unique<os::VanillaBalancer>());
  s.begin_service();
  s.advance_service(milliseconds(10));
  const auto tids = s.admit_benchmark("blackscholes", 2, 1'000'000);
  ASSERT_EQ(tids.size(), 2u);
  for (const ThreadId tid : tids) {
    EXPECT_EQ(s.kernel().task(tid).arrived_at, milliseconds(10));
  }
  s.advance_service(milliseconds(110));
  const auto r = s.finish_service();
  // The per-thread budget override makes service jobs terminate.
  for (const ThreadId tid : tids) {
    const auto& t = s.kernel().task(tid);
    EXPECT_FALSE(t.alive());
    EXPECT_EQ(t.insts_retired, 1'000'000u);
  }
  EXPECT_EQ(r.simulated, milliseconds(120));
}

TEST(Simulation, ServiceModeLifecycleGuards) {
  Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
  EXPECT_THROW(s.advance_service(milliseconds(1)), std::logic_error);
  EXPECT_THROW(s.finish_service(), std::logic_error);
  s.begin_service();
  EXPECT_THROW(s.begin_service(), std::logic_error);
  EXPECT_THROW(s.run(), std::logic_error);
  s.finish_service();
  EXPECT_THROW(s.finish_service(), std::logic_error);
}

}  // namespace
}  // namespace sb::sim
