#include "sim/report.h"

#include <gtest/gtest.h>

#include <memory>

#include "os/vanilla_balancer.h"
#include "sim/simulation.h"

namespace sb::sim {
namespace {

/// Minimal structural JSON validation (balanced delimiters outside strings,
/// legal escapes) — enough to catch writer bugs without a JSON dependency.
bool structurally_valid_json(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

SimulationResult sample_result() {
  SimulationConfig cfg;
  cfg.duration = milliseconds(120);
  cfg.thermal_enabled = true;
  Simulation s(arch::Platform::quad_heterogeneous(), cfg);
  s.set_balancer(std::make_unique<os::VanillaBalancer>());
  s.add_benchmark("ferret", 3);
  return s.run();
}

TEST(Report, StructurallyValidAndComplete) {
  const std::string json = to_json(sample_result());
  EXPECT_TRUE(structurally_valid_json(json)) << json.substr(0, 200);
  for (const char* key :
       {"\"policy\"", "\"instructions\"", "\"energy_j\"", "\"ips_per_watt\"",
        "\"cores\"", "\"threads\"", "\"balancer_overhead_us\"",
        "\"thermal\"", "\"avg_sched_latency_us\"", "\"utilization\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // 4 core objects and 3 thread objects.
  std::size_t cores = 0, pos = 0;
  while ((pos = json.find("\"type\":", pos)) != std::string::npos) {
    ++cores;
    ++pos;
  }
  EXPECT_EQ(cores, 4u);
}

TEST(Report, EscapesStrings) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Report, NonFiniteBecomesNull) {
  SimulationResult r;
  r.label = "x";
  r.ips = std::numeric_limits<double>::infinity();
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"ips\":null"), std::string::npos);
  EXPECT_TRUE(structurally_valid_json(json));
}

TEST(Report, EmptyResultStillValid) {
  const std::string json = to_json(SimulationResult{});
  EXPECT_TRUE(structurally_valid_json(json));
  EXPECT_NE(json.find("\"cores\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"threads\":[]"), std::string::npos);
  EXPECT_EQ(json.find("\"thermal\""), std::string::npos)
      << "thermal block only present when enabled";
}

}  // namespace
}  // namespace sb::sim
