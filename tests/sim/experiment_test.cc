#include "sim/experiment.h"

#include <gtest/gtest.h>

namespace sb::sim {
namespace {

TEST(Experiment, ComparePoliciesRunsEachOnce) {
  SimulationConfig cfg;
  cfg.duration = milliseconds(120);
  const auto runs = compare_policies(
      arch::Platform::quad_heterogeneous(), cfg,
      [](Simulation& s) { s.add_benchmark("ferret", 4); },
      {{"vanilla", vanilla_factory()}, {"smart", smartbalance_factory()}});
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].policy, "vanilla");
  EXPECT_EQ(runs[1].policy, "smart");
  EXPECT_GT(runs[0].result.instructions, 0u);
  EXPECT_GT(runs[1].result.instructions, 0u);
}

TEST(Experiment, IdenticalWorkloadAcrossPolicies) {
  SimulationConfig cfg;
  cfg.duration = milliseconds(60);
  const auto runs = compare_policies(
      arch::Platform::quad_heterogeneous(), cfg,
      [](Simulation& s) { s.add_benchmark("vips", 3); },
      {{"a", vanilla_factory()}, {"b", vanilla_factory()}});
  // Same policy twice on the same seed: identical outcomes.
  EXPECT_EQ(runs[0].result.instructions, runs[1].result.instructions);
  EXPECT_DOUBLE_EQ(runs[0].result.energy_j, runs[1].result.energy_j);
}

TEST(Experiment, GtsFactoryTargetsBigCluster) {
  SimulationConfig cfg;
  cfg.duration = milliseconds(120);
  const auto runs = compare_policies(
      arch::Platform::octa_big_little(), cfg,
      [](Simulation& s) { s.add_benchmark("swaptions", 4); },
      {{"gts", gts_factory(0)}});
  EXPECT_EQ(runs[0].result.policy, "gts");
  EXPECT_GT(runs[0].result.instructions, 0u);
}

TEST(Experiment, TrainDefaultModelProducesNonTrivialTheta) {
  Simulation s(arch::Platform::quad_heterogeneous());
  const auto model = train_default_model(s.perf_model(), s.power_model());
  // At least the ipc_src coefficient of some pair must be non-zero.
  double max_abs = 0;
  for (CoreTypeId a = 0; a < model.num_types(); ++a) {
    for (CoreTypeId b = 0; b < model.num_types(); ++b) {
      if (a == b) continue;
      for (double v : model.theta(a, b)) max_abs = std::max(max_abs, std::abs(v));
    }
  }
  EXPECT_GT(max_abs, 0.01);
}

TEST(Experiment, RunReplicatedVariesSeedsDeterministically) {
  SimulationConfig cfg;
  cfg.duration = milliseconds(80);
  const auto results = run_replicated(
      arch::Platform::quad_heterogeneous(), cfg,
      [](Simulation& s) { s.add_benchmark("bodytrack", 4); },
      vanilla_factory(), 3);
  ASSERT_EQ(results.size(), 3u);
  // Replicas differ (different seeds)...
  EXPECT_NE(results[0].instructions, results[1].instructions);
  // ...but rerunning reproduces them exactly.
  const auto again = run_replicated(
      arch::Platform::quad_heterogeneous(), cfg,
      [](Simulation& s) { s.add_benchmark("bodytrack", 4); },
      vanilla_factory(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].instructions,
              again[static_cast<std::size_t>(i)].instructions);
  }
  EXPECT_THROW(run_replicated(arch::Platform::quad_heterogeneous(), cfg,
                              [](Simulation&) {}, vanilla_factory(), 0),
               std::invalid_argument);
}

TEST(Experiment, FactoryWithExplicitModelMatchesTrainedFactory) {
  SimulationConfig cfg;
  cfg.duration = milliseconds(120);
  const auto workload = [](Simulation& s) {
    s.add_benchmark("canneal", 2);
    s.add_benchmark("swaptions", 2);
  };
  // Train once, inject explicitly; must behave identically to the
  // factory-trained path (which trains the same model deterministically).
  Simulation probe(arch::Platform::quad_heterogeneous(), cfg);
  auto model = train_default_model(probe.perf_model(), probe.power_model());
  const auto a = compare_policies(arch::Platform::quad_heterogeneous(), cfg,
                                  workload,
                                  {{"sb", smartbalance_factory()}});
  const auto b = compare_policies(
      arch::Platform::quad_heterogeneous(), cfg, workload,
      {{"sb", smartbalance_factory_with_model(std::move(model))}});
  EXPECT_EQ(a[0].result.instructions, b[0].result.instructions);
  EXPECT_DOUBLE_EQ(a[0].result.energy_j, b[0].result.energy_j);
}

TEST(Experiment, SmartBalanceFactoryCachesModelPerPlatformShape) {
  // Two invocations on the same platform shape should be fast (cache hit);
  // correctness-wise we can only observe both produce working policies.
  auto factory = smartbalance_factory();
  SimulationConfig cfg;
  cfg.duration = milliseconds(60);
  Simulation s1(arch::Platform::quad_heterogeneous(), cfg);
  Simulation s2(arch::Platform::quad_heterogeneous(), cfg);
  auto p1 = factory(s1);
  auto p2 = factory(s2);
  EXPECT_EQ(p1->name(), "smartbalance");
  EXPECT_EQ(p2->name(), "smartbalance");
}

}  // namespace
}  // namespace sb::sim
