// Concurrency stress for ExperimentRunner: a large mixed-policy batch on
// many worker threads, run twice, compared run-to-run. Under ThreadSanitizer
// (the CI tsan job) this exercises the shared predictor-model cache in
// smartbalance_factory, the logging path, and the lazily-initialized
// benchmark/feature tables for data races.
#include "sim/runner.h"

#include <gtest/gtest.h>

#include "arch/platform.h"
#include "common/log.h"

namespace sb::sim {
namespace {

ExperimentRunner runner_with(int threads) {
  ExperimentRunner::Config cfg;
  cfg.threads = threads;
  return ExperimentRunner(cfg);
}

/// 72 small specs cycling through platforms, workloads and policies. A
/// single SmartBalance factory is shared across all its specs so concurrent
/// workers hit the same predictor-model cache (the interesting race
/// surface); vanilla and GTS interleave to vary per-run timing.
std::vector<ExperimentSpec> stress_batch() {
  const auto quad = arch::Platform::quad_heterogeneous();
  const auto octa = arch::Platform::octa_big_little();
  const auto shared_smart = smartbalance_factory();
  const char* benches[] = {"swaptions", "canneal",  "bodytrack",
                           "IMB_HTHI",  "IMB_LTLI", "streamcluster"};
  std::vector<ExperimentSpec> specs;
  for (int i = 0; i < 72; ++i) {
    ExperimentSpec spec;
    const bool big_little = (i % 2) == 1;
    spec.platform = big_little ? octa : quad;
    spec.cfg.duration = milliseconds(30);
    spec.cfg.seed = 100 + static_cast<std::uint64_t>(i);
    const std::string bench = benches[i % 6];
    const int threads = 1 + (i % 4);
    spec.workload = [bench, threads](Simulation& s) {
      s.add_benchmark(bench, threads);
    };
    switch (i % 3) {
      case 0:
        spec.policy = vanilla_factory();
        spec.policy_name = "vanilla";
        break;
      case 1:
        spec.policy = big_little ? gts_factory(0) : vanilla_factory();
        spec.policy_name = big_little ? "gts" : "vanilla";
        break;
      default:
        spec.policy = shared_smart;
        spec.policy_name = "smartbalance";
        break;
    }
    spec.label = bench + "#" + std::to_string(i);
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(RunnerStress, LargeMixedBatchIsRunToRunDeterministic) {
  // Raise log traffic through the mutex-guarded emitter while workers run.
  const auto prev = log_level();
  set_log_level(LogLevel::Warn);
  const auto specs = stress_batch();
  ASSERT_GE(specs.size(), 64u);
  const auto first = runner_with(8).run(specs);
  const auto second = runner_with(8).run(specs);
  ASSERT_EQ(first.runs.size(), specs.size());
  ASSERT_EQ(second.runs.size(), specs.size());
  EXPECT_EQ(first.summary.failed, 0u);
  EXPECT_EQ(second.summary.failed, 0u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(first.runs[i].ok()) << first.runs[i].error;
    ASSERT_TRUE(second.runs[i].ok()) << second.runs[i].error;
    EXPECT_EQ(first.runs[i].label, specs[i].label);
    const auto& a = first.runs[i].result;
    const auto& b = second.runs[i].result;
    EXPECT_EQ(a.instructions, b.instructions) << specs[i].label;
    EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j) << specs[i].label;
    EXPECT_EQ(a.migrations, b.migrations) << specs[i].label;
    EXPECT_EQ(a.context_switches, b.context_switches) << specs[i].label;
  }
  set_log_level(prev);
}

TEST(RunnerStress, SharedSmartBalanceFactoryRacesOnlyOnTraining) {
  // All specs share one smartbalance factory on the same platform shape:
  // exactly one training happens under the cache mutex, every other worker
  // blocks then reuses it. Results must be identical to isolated factories.
  const auto quad = arch::Platform::quad_heterogeneous();
  const auto shared = smartbalance_factory();
  std::vector<ExperimentSpec> specs;
  for (int i = 0; i < 8; ++i) {
    ExperimentSpec spec;
    spec.platform = quad;
    spec.cfg.duration = milliseconds(30);
    spec.cfg.seed = 42;  // same seed: all runs must agree exactly
    spec.workload = [](Simulation& s) { s.add_benchmark("canneal", 4); };
    spec.policy = shared;
    spec.label = "sb#" + std::to_string(i);
    specs.push_back(std::move(spec));
  }
  const auto batch = runner_with(8).run(specs);
  ASSERT_EQ(batch.summary.failed, 0u);
  for (std::size_t i = 1; i < batch.runs.size(); ++i) {
    EXPECT_EQ(batch.runs[i].result.instructions,
              batch.runs[0].result.instructions);
    EXPECT_DOUBLE_EQ(batch.runs[i].result.energy_j,
                     batch.runs[0].result.energy_j);
  }
}

}  // namespace
}  // namespace sb::sim
