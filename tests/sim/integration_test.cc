// Whole-system integration: every subsystem enabled at once — DVFS with the
// ondemand governor, the thermal model, CSV tracing, dynamic arrivals, CPU
// hotplug mid-run, and SmartBalance with the trained predictor — verifying
// the features compose without violating the core invariants.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "os/dvfs_governor.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/simulation.h"

namespace sb::sim {
namespace {

TEST(Integration, EverythingOnAtOnce) {
  const std::string trace_path = "integration_trace_tmp.csv";
  SimulationConfig cfg;
  cfg.duration = milliseconds(700);
  cfg.kernel.enable_dvfs = true;
  cfg.thermal_enabled = true;
  cfg.trace_path = trace_path;
  cfg.label = "integration";

  Simulation s(arch::Platform::quad_heterogeneous(), cfg);
  s.set_balancer(smartbalance_factory()(s));
  s.kernel().set_governor(std::make_unique<os::OndemandGovernor>());
  s.add_benchmark("canneal", 2);
  s.add_benchmark("swaptions", 2);
  s.add_benchmark("IMB_MTMI", 2);
  s.add_benchmark_at(milliseconds(200), "x264_H_crew", 2);

  // Hotplug the Big core out after the warm-up phase, back in later.
  // (Drive the kernel through the Simulation's own chunked loop by doing
  // the hotplug from deferred positions: run() is single-shot, so use the
  // kernel directly before run for the "out" and verify "in" works after.)
  s.kernel().set_core_online(1, false);

  const auto r = s.run();

  // Work got done; energy finite; time fully accounted.
  EXPECT_GT(r.instructions, 100'000'000u);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_EQ(r.simulated, milliseconds(700));
  for (const auto& c : r.cores) {
    EXPECT_EQ(c.busy_ns + c.sleep_ns +
                  (r.simulated - c.busy_ns - c.sleep_ns),
              r.simulated);
  }
  // The offlined Big core never ran anything.
  EXPECT_EQ(r.cores[1].instructions, 0u);
  EXPECT_EQ(r.cores[1].busy_ns, 0);
  // DVFS was active.
  EXPECT_GT(r.dvfs_transitions, 0u);
  // Thermal sampled and produced sane numbers.
  EXPECT_GT(r.max_temp_c, 45.0);
  EXPECT_LT(r.max_temp_c, 100.0);
  // The arrival actually joined.
  EXPECT_EQ(r.threads.size(), 8u);
  // Balancer ran its epochs and kept overhead stats.
  EXPECT_GE(r.balance_passes, 10u);
  EXPECT_GT(r.avg_optimize_us, 0.0);
  // Latency stats populated (shared cores imply waiting).
  EXPECT_GT(r.avg_sched_latency_us, 0.0);

  // The JSON report of this maximal result is structurally sound.
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"thermal\""), std::string::npos);

  // Trace exists and has the expected cadence.
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  int rows = 0;
  for (std::string line; std::getline(in, line);) ++rows;
  // Header + ~(700 ms / 5 ms) samples × 4 cores; arrival-aligned chunk
  // trimming shifts the exact count by a few samples.
  EXPECT_GT(rows, 500);
  EXPECT_LE(rows, 1 + 700 / 5 * 4 + 8);
  in.close();
  std::remove(trace_path.c_str());

  // Re-onlining works after the run on the same kernel.
  s.kernel().set_core_online(1, true);
  EXPECT_TRUE(s.kernel().core_online(1));
}

TEST(Integration, DeterministicWithEverythingOn) {
  auto once = [] {
    SimulationConfig cfg;
    cfg.duration = milliseconds(300);
    cfg.kernel.enable_dvfs = true;
    cfg.thermal_enabled = true;
    Simulation s(arch::Platform::octa_big_little(), cfg);
    s.set_balancer(smartbalance_factory()(s));
    s.kernel().set_governor(std::make_unique<os::OndemandGovernor>());
    s.add_benchmark("ferret", 4);
    s.add_benchmark("IMB_LTHI", 4);
    return s.run();
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.dvfs_transitions, b.dvfs_transitions);
  EXPECT_DOUBLE_EQ(a.max_temp_c, b.max_temp_c);
}

}  // namespace
}  // namespace sb::sim
