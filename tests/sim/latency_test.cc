// Wake-to-run latency accounting through the simulation façade: the exact
// nearest-rank tail in SimulationResult, its JSON `latency` block, the
// cross-check against the obs-layer histogram, and run-to-run determinism.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/percentile.h"
#include "obs/trace.h"
#include "os/vanilla_balancer.h"
#include "sim/report.h"
#include "sim/simulation.h"
#include "workload/sched_replay.h"

namespace sb::sim {
namespace {

/// A short interactive replay: two UI-style tasks duty-cycling against a
/// CPU-bound background task, all inside a 60 ms window.
workload::ReplaySchedule interactive_schedule() {
  std::ostringstream os;
  os << workload::replay_csv_header() << "\n"
     << "spawn,0.000,bg,builtin:canneal\n"
     << "spawn,0.000,ui0,builtin:IMB_MTHI\n"
     << "spawn,500.000,ui1,builtin:IMB_MTHI\n";
  for (int cycle = 0; cycle < 20; ++cycle) {
    const long base = 1000 + cycle * 2500;
    os << "sleep," << base << ".000,ui0,\n"
       << "sleep," << (base + 300) << ".000,ui1,\n"
       << "wake," << (base + 1500) << ".000,ui0,\n"
       << "wake," << (base + 1800) << ".000,ui1,\n";
  }
  std::istringstream in(os.str());
  return workload::compile_replay_schedule(workload::parse_replay_trace(in));
}

SimulationConfig quick_cfg() {
  SimulationConfig cfg;
  cfg.duration = milliseconds(60);
  return cfg;
}

TEST(WakeToRun, CpuBoundRunHasNoWakes) {
  Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
  s.set_balancer(std::make_unique<os::VanillaBalancer>());
  s.add_benchmark("canneal", 4);  // pure CPU-bound, never sleeps
  const SimulationResult r = s.run();
  EXPECT_EQ(r.wake_to_run.count, 0u);
  EXPECT_EQ(r.wake_to_run.p99_ns, 0u);
  // The JSON report omits the latency block entirely for such runs.
  EXPECT_EQ(to_json(r).find("\"latency\""), std::string::npos);
}

TEST(WakeToRun, InteractiveRunReportsExactTail) {
  Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
  s.set_balancer(std::make_unique<os::VanillaBalancer>());
  s.add_replay(interactive_schedule());
  const SimulationResult r = s.run();
  ASSERT_GT(r.wake_to_run.count, 0u);

  // The reported tail must be exactly tail_of() over the kernel's raw
  // wake→first-dispatch samples — no bucketing, no sampling.
  const auto& waits = s.kernel().wake_latencies();
  std::vector<std::uint64_t> sample;
  for (TimeNs w : waits) {
    EXPECT_GE(w, 0);
    sample.push_back(static_cast<std::uint64_t>(w));
  }
  const LatencyTail expect = tail_of(sample);
  EXPECT_EQ(r.wake_to_run.count, expect.count);
  EXPECT_DOUBLE_EQ(r.wake_to_run.mean_ns, expect.mean_ns);
  EXPECT_EQ(r.wake_to_run.p50_ns, expect.p50_ns);
  EXPECT_EQ(r.wake_to_run.p95_ns, expect.p95_ns);
  EXPECT_EQ(r.wake_to_run.p99_ns, expect.p99_ns);
  EXPECT_EQ(r.wake_to_run.max_ns, expect.max_ns);
  EXPECT_LE(r.wake_to_run.p50_ns, r.wake_to_run.p95_ns);
  EXPECT_LE(r.wake_to_run.p95_ns, r.wake_to_run.p99_ns);
  EXPECT_LE(r.wake_to_run.p99_ns, r.wake_to_run.max_ns);

  // ...and the JSON report carries the block.
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"latency\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
}

TEST(WakeToRun, IdenticalRunsProduceIdenticalSamples) {
  const auto run_once = [] {
    Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
    s.set_balancer(std::make_unique<os::VanillaBalancer>());
    s.add_replay(interactive_schedule());
    s.run();
    return s.kernel().wake_latencies();
  };
  const std::vector<TimeNs> a = run_once();
  const std::vector<TimeNs> b = run_once();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(WakeToRun, ObsHistogramMatchesExactTail) {
  auto cfg = quick_cfg();
  cfg.obs.metrics = true;
  Simulation s(arch::Platform::quad_heterogeneous(), cfg);
  s.set_balancer(std::make_unique<os::VanillaBalancer>());
  s.add_replay(interactive_schedule());
  const SimulationResult r = s.run();
  ASSERT_GT(r.wake_to_run.count, 0u);
  ASSERT_NE(r.obs, nullptr);
  const auto& hists = r.obs->metrics.histograms();
  const auto it = hists.find("sched.wake_to_run_ns");
  ASSERT_NE(it, hists.end());
  EXPECT_EQ(it->second.count(), r.wake_to_run.count);
}

}  // namespace
}  // namespace sb::sim
