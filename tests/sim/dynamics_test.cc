// Tests for the simulation extensions: thermal sampling, tracing, deferred
// thread arrivals, and DVFS plumbed through the façade.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "os/dvfs_governor.h"
#include "os/vanilla_balancer.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace sb::sim {
namespace {

SimulationConfig quick_cfg(TimeNs duration = milliseconds(150)) {
  SimulationConfig cfg;
  cfg.duration = duration;
  return cfg;
}

TEST(Thermal, SimulationReportsTemperatures) {
  auto cfg = quick_cfg(milliseconds(300));
  cfg.thermal_enabled = true;
  Simulation s(arch::Platform::quad_heterogeneous(), cfg);
  s.set_balancer(std::make_unique<os::VanillaBalancer>());
  s.add_benchmark("swaptions", 4);
  const auto r = s.run();
  ASSERT_EQ(r.final_temp_c.size(), 4u);
  EXPECT_GT(r.max_temp_c, cfg.thermal.ambient_c + 1.0);
  // The Huge core runs the hottest when loaded evenly.
  EXPECT_GT(r.final_temp_c[0], r.final_temp_c[3]);
}

TEST(Thermal, DisabledLeavesMetricsEmpty) {
  Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
  s.add_benchmark("vips", 2);
  const auto r = s.run();
  EXPECT_TRUE(r.final_temp_c.empty());
  EXPECT_EQ(r.max_temp_c, 0.0);
}

TEST(Trace, WritesLongFormatCsv) {
  const std::string path = "test_trace_tmp.csv";
  auto cfg = quick_cfg();
  cfg.trace_path = path;
  cfg.thermal_enabled = true;
  {
    Simulation s(arch::Platform::quad_heterogeneous(), cfg);
    s.set_balancer(std::make_unique<os::VanillaBalancer>());
    s.add_benchmark("ferret", 4);
    s.run();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "time_ms,core,power_w,temp_c,nr_running,freq_mhz");
  int rows = 0;
  for (std::string line; std::getline(in, line);) ++rows;
  // 150 ms / 5 ms samples × 4 cores = 120 rows.
  EXPECT_EQ(rows, 120);
  in.close();
  std::remove(path.c_str());
}

TEST(Arrivals, DeferredBenchmarkForksAtTime) {
  Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
  s.set_balancer(std::make_unique<os::VanillaBalancer>());
  s.add_benchmark("swaptions", 2);
  s.add_benchmark_at(milliseconds(60), "canneal", 2);
  const auto r = s.run();
  ASSERT_EQ(r.threads.size(), 4u);
  // Late arrivals ran for at most the remaining window.
  EXPECT_GT(r.threads[2].runtime, 0);
  EXPECT_LT(r.threads[2].runtime, milliseconds(95));
  EXPECT_EQ(s.kernel().task(2).arrived_at, milliseconds(60));
}

TEST(Arrivals, ValidatesNameEagerly) {
  Simulation s(arch::Platform::quad_heterogeneous(), quick_cfg());
  EXPECT_THROW(s.add_benchmark_at(milliseconds(10), "bogus", 2),
               std::out_of_range);
}

TEST(Arrivals, SmartBalanceAdaptsToArrival) {
  // A memory hog lands on the platform mid-run; SmartBalance must not
  // leave it wherever fork placed it if that placement is poor.
  auto cfg = quick_cfg(milliseconds(500));
  Simulation s(arch::Platform::quad_heterogeneous(), cfg);
  s.set_balancer(smartbalance_factory()(s));
  s.add_benchmark("swaptions", 2);
  s.add_benchmark_at(milliseconds(120), "canneal", 2);
  const auto r = s.run();
  EXPECT_EQ(r.threads.size(), 4u);
  // The canneal threads must have been characterized and placed off the
  // Huge core by the end.
  for (ThreadId tid : s.kernel().alive_threads()) {
    const auto& t = s.kernel().task(tid);
    if (t.name.rfind("canneal", 0) == 0) {
      EXPECT_NE(t.cpu, 0) << t.name << " left on the Huge core";
    }
  }
}

TEST(Dvfs, FacadePlumbing) {
  auto cfg = quick_cfg(milliseconds(300));
  cfg.kernel.enable_dvfs = true;
  Simulation s(arch::Platform::quad_heterogeneous(), cfg);
  s.set_balancer(std::make_unique<os::VanillaBalancer>());
  s.kernel().set_governor(std::make_unique<os::OndemandGovernor>());
  s.add_benchmark("IMB_LTHI", 2);  // light load: governor should downshift
  const auto r = s.run();
  EXPECT_GT(r.dvfs_transitions, 0u);
}

}  // namespace
}  // namespace sb::sim
