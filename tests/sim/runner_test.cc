// ExperimentRunner determinism harness: the parallel runner must produce
// bit-identical results regardless of worker count or completion order,
// preserve submission order, contain per-spec failures, and honor the
// pinned replica-seed schedule the CSV golden figures depend on.
#include "sim/runner.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "arch/platform.h"
#include "os/vanilla_balancer.h"

namespace sb::sim {
namespace {

ExperimentRunner runner_with(int threads) {
  ExperimentRunner::Config cfg;
  cfg.threads = threads;
  return ExperimentRunner(cfg);
}

/// A mixed vanilla/GTS/SmartBalance batch across two platforms and several
/// seeds — enough policy and workload diversity to catch schedule-dependent
/// state leaking between runs.
std::vector<ExperimentSpec> mixed_batch() {
  std::vector<ExperimentSpec> specs;
  const auto quad = arch::Platform::quad_heterogeneous();
  const auto octa = arch::Platform::octa_big_little();
  auto add = [&](const arch::Platform& p, std::uint64_t seed,
                 const std::string& bench, int threads,
                 const std::string& policy_name, BalancerFactory policy) {
    ExperimentSpec spec;
    spec.platform = p;
    spec.cfg.duration = milliseconds(60);
    spec.cfg.seed = seed;
    spec.workload = [bench, threads](Simulation& s) {
      s.add_benchmark(bench, threads);
    };
    spec.policy = std::move(policy);
    spec.label = bench + "/" + policy_name;
    spec.policy_name = policy_name;
    specs.push_back(std::move(spec));
  };
  add(quad, 1, "swaptions", 4, "vanilla", vanilla_factory());
  add(quad, 2, "canneal", 4, "smartbalance", smartbalance_factory());
  add(octa, 3, "bodytrack", 8, "gts", gts_factory(0));
  add(octa, 4, "ferret", 6, "vanilla", vanilla_factory());
  add(quad, 5, "IMB_HTHI", 2, "smartbalance", smartbalance_factory());
  add(octa, 6, "x264_H_crew", 8, "gts", gts_factory(0));
  return specs;
}

void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.balance_passes, b.balance_passes);
  // Bit-identical, not approximately equal: the runs must execute the very
  // same trajectory.
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_DOUBLE_EQ(a.ips, b.ips);
  EXPECT_DOUBLE_EQ(a.ips_per_watt, b.ips_per_watt);
  // Final allocations: per-core instruction/energy split and per-thread
  // migration counts must match exactly.
  ASSERT_EQ(a.cores.size(), b.cores.size());
  for (std::size_t c = 0; c < a.cores.size(); ++c) {
    EXPECT_EQ(a.cores[c].instructions, b.cores[c].instructions) << "core " << c;
    EXPECT_DOUBLE_EQ(a.cores[c].energy_j, b.cores[c].energy_j) << "core " << c;
    EXPECT_EQ(a.cores[c].busy_ns, b.cores[c].busy_ns) << "core " << c;
  }
  ASSERT_EQ(a.threads.size(), b.threads.size());
  for (std::size_t i = 0; i < a.threads.size(); ++i) {
    EXPECT_EQ(a.threads[i].tid, b.threads[i].tid) << "thread " << i;
    EXPECT_EQ(a.threads[i].instructions, b.threads[i].instructions)
        << "thread " << i;
    EXPECT_EQ(a.threads[i].migrations, b.threads[i].migrations)
        << "thread " << i;
  }
}

TEST(Runner, BitIdenticalAcrossThreadCounts) {
  const auto specs = mixed_batch();
  const auto r1 = runner_with(1).run(specs);
  const auto r2 = runner_with(2).run(specs);
  const auto r8 = runner_with(8).run(specs);
  ASSERT_EQ(r1.runs.size(), specs.size());
  ASSERT_EQ(r2.runs.size(), specs.size());
  ASSERT_EQ(r8.runs.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(r1.runs[i].ok()) << r1.runs[i].error;
    ASSERT_TRUE(r2.runs[i].ok()) << r2.runs[i].error;
    ASSERT_TRUE(r8.runs[i].ok()) << r8.runs[i].error;
    expect_identical(r1.runs[i].result, r2.runs[i].result);
    expect_identical(r1.runs[i].result, r8.runs[i].result);
  }
}

TEST(Runner, PreservesSubmissionOrder) {
  const auto specs = mixed_batch();
  const auto batch = runner_with(8).run(specs);
  ASSERT_EQ(batch.runs.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(batch.runs[i].label, specs[i].label);
    EXPECT_EQ(batch.runs[i].result.policy, specs[i].policy_name);
  }
}

TEST(Runner, SpecFailureDoesNotPoisonBatch) {
  auto specs = mixed_batch();
  // Sabotage one spec in the middle: an unknown benchmark throws inside the
  // workload builder on a worker thread.
  specs[2].workload = [](Simulation& s) {
    s.add_benchmark("no-such-benchmark", 4);
  };
  specs[2].label = "poisoned";
  const auto batch = runner_with(4).run(specs);
  ASSERT_EQ(batch.runs.size(), specs.size());
  EXPECT_FALSE(batch.runs[2].ok());
  EXPECT_FALSE(batch.runs[2].error.empty());
  EXPECT_EQ(batch.summary.failed, 1u);
  // Every other spec still succeeded, with the expected results.
  const auto clean = runner_with(1).run(mixed_batch());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (i == 2) continue;
    ASSERT_TRUE(batch.runs[i].ok()) << batch.runs[i].error;
    expect_identical(batch.runs[i].result, clean.runs[i].result);
  }
}

TEST(Runner, EmptyBatch) {
  const auto batch = runner_with(4).run({});
  EXPECT_TRUE(batch.runs.empty());
  EXPECT_EQ(batch.summary.total, 0u);
  EXPECT_EQ(batch.summary.failed, 0u);
}

TEST(Runner, BatchSummaryAccounting) {
  const auto specs = mixed_batch();
  const auto batch = runner_with(2).run(specs);
  EXPECT_EQ(batch.summary.total, specs.size());
  EXPECT_EQ(batch.summary.failed, 0u);
  EXPECT_EQ(batch.summary.threads, 2);
  EXPECT_GT(batch.summary.wall_ms, 0.0);
  // Sum of per-run wall-clock is at least the batch wall-clock divided by
  // the worker count (work conservation).
  EXPECT_GE(batch.summary.cpu_ms, 0.0);
  for (const auto& r : batch.runs) EXPECT_GT(r.wall_ms, 0.0);
}

TEST(Runner, DefaultThreadsHonorsSbJobsEnv) {
  ::setenv("SB_JOBS", "3", 1);
  EXPECT_EQ(ExperimentRunner::default_threads(), 3);
  EXPECT_EQ(ExperimentRunner().threads(), 3);
  // Explicit config wins over the environment.
  EXPECT_EQ(runner_with(5).threads(), 5);
  ::setenv("SB_JOBS", "not-a-number", 1);
  EXPECT_GE(ExperimentRunner::default_threads(), 1);
  ::unsetenv("SB_JOBS");
  EXPECT_GE(ExperimentRunner::default_threads(), 1);
}

// --- Seed-derivation regression -------------------------------------------
// The CSV golden figures were produced with replica r of base seed B running
// at seed B + r * 0x9e3779b9. Parallelization must never change this
// schedule; pin it exactly.

TEST(Runner, ReplicaSeedScheduleIsPinned) {
  EXPECT_EQ(replica_seed(1234, 0), 1234ULL);
  EXPECT_EQ(replica_seed(1234, 1), 1234ULL + 0x9e3779b9ULL);
  EXPECT_EQ(replica_seed(1234, 2), 1234ULL + 2 * 0x9e3779b9ULL);
  EXPECT_EQ(replica_seed(1234, 7), 1234ULL + 7 * 0x9e3779b9ULL);
  EXPECT_EQ(replica_seed(0, 3), 3 * 0x9e3779b9ULL);
  // Concrete pinned values (would catch a stride or width change).
  EXPECT_EQ(replica_seed(1234, 1), 0x9e377e8bULL);
  EXPECT_EQ(replica_seed(0xffffffffffffffffULL, 1),
            0x9e3779b8ULL);  // wraps mod 2^64
  static_assert(replica_seed(42, 4) == 42 + 4 * 0x9e3779b9ULL);
}

TEST(Runner, RunReplicatedUsesPinnedSeedSchedule) {
  // run_replicated (now parallel) must equal running each replica manually
  // with the pinned schedule through a single-threaded runner.
  const auto platform = arch::Platform::quad_heterogeneous();
  SimulationConfig cfg;
  cfg.duration = milliseconds(60);
  cfg.seed = 777;
  const WorkloadBuilder workload = [](Simulation& s) {
    s.add_benchmark("bodytrack", 4);
  };
  const auto results =
      run_replicated(platform, cfg, workload, vanilla_factory(), 3);
  ASSERT_EQ(results.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    SimulationConfig manual = cfg;
    manual.seed = replica_seed(cfg.seed, r);
    Simulation sim(platform, manual);
    sim.set_balancer(vanilla_factory()(sim));
    workload(sim);
    const auto expected = sim.run();
    expect_identical(results[static_cast<std::size_t>(r)], expected);
  }
}

TEST(Runner, RunSweepCrossProductOrderAndDeterminism) {
  const auto platform = arch::Platform::quad_heterogeneous();
  SimulationConfig cfg;
  cfg.duration = milliseconds(60);
  const std::vector<std::pair<std::string, WorkloadBuilder>> workloads = {
      {"swaptions", [](Simulation& s) { s.add_benchmark("swaptions", 4); }},
      {"canneal", [](Simulation& s) { s.add_benchmark("canneal", 4); }},
  };
  const std::vector<std::pair<std::string, BalancerFactory>> policies = {
      {"vanilla", vanilla_factory()},
      {"gts", gts_factory(0)},
  };
  const auto a =
      run_sweep(platform, cfg, workloads, policies, 2, runner_with(1));
  const auto b =
      run_sweep(platform, cfg, workloads, policies, 2, runner_with(8));
  ASSERT_EQ(a.runs.size(), 8u);  // 2 workloads x 2 policies x 2 replicas
  ASSERT_EQ(b.runs.size(), 8u);
  // Workload-major, then policy, then replica.
  EXPECT_EQ(a.runs[0].label, "swaptions/vanilla#0");
  EXPECT_EQ(a.runs[1].label, "swaptions/vanilla#1");
  EXPECT_EQ(a.runs[2].label, "swaptions/gts#0");
  EXPECT_EQ(a.runs[4].label, "canneal/vanilla#0");
  EXPECT_EQ(a.runs[7].label, "canneal/gts#1");
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    ASSERT_TRUE(a.runs[i].ok()) << a.runs[i].error;
    ASSERT_TRUE(b.runs[i].ok()) << b.runs[i].error;
    EXPECT_EQ(a.runs[i].label, b.runs[i].label);
    expect_identical(a.runs[i].result, b.runs[i].result);
  }
  // Replicas really differ (the seed schedule is applied).
  EXPECT_NE(a.runs[0].result.instructions, a.runs[1].result.instructions);
  EXPECT_THROW(run_sweep(platform, cfg, workloads, policies, 0),
               std::invalid_argument);
}

TEST(Runner, ComparePoliciesMatchesManualSequentialRuns) {
  // compare_policies is now parallel internally; it must still match
  // building each simulation by hand on the same seed.
  const auto platform = arch::Platform::quad_heterogeneous();
  SimulationConfig cfg;
  cfg.duration = milliseconds(60);
  const WorkloadBuilder workload = [](Simulation& s) {
    s.add_benchmark("vips", 3);
  };
  const auto runs = compare_policies(
      platform, cfg, workload,
      {{"vanilla", vanilla_factory()}, {"gts", gts_factory(0)}});
  ASSERT_EQ(runs.size(), 2u);
  const std::vector<BalancerFactory> factories = {vanilla_factory(),
                                                  gts_factory(0)};
  for (std::size_t i = 0; i < factories.size(); ++i) {
    Simulation sim(platform, cfg);
    sim.set_balancer(factories[i](sim));
    workload(sim);
    const auto expected = sim.run();
    expect_identical(runs[i].result, expected);
  }
}

}  // namespace
}  // namespace sb::sim
