#include "power/power_model.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "arch/platform.h"
#include "perf/perf_model.h"

namespace sb::power {
namespace {

class PowerModelTest : public ::testing::Test {
 protected:
  PowerModelTest()
      : platform_(arch::Platform::quad_heterogeneous()),
        perf_(platform_),
        power_(platform_, perf_) {}

  arch::Platform platform_;
  perf::PerfModel perf_;
  PowerModel power_;
};

TEST_F(PowerModelTest, CalibrationReproducesTable2PeakPower) {
  // By construction: busy power at (peak IPC, probe activity) equals the
  // Table 2 peak power for every type.
  for (CoreTypeId t = 0; t < platform_.num_types(); ++t) {
    EXPECT_NEAR(power_.peak_power_w(t), platform_.params_of_type(t).peak_power_w,
                1e-9)
        << platform_.params_of_type(t).name;
  }
}

TEST_F(PowerModelTest, LeakagePlusDynamicEqualsPeak) {
  for (CoreTypeId t = 0; t < platform_.num_types(); ++t) {
    EXPECT_NEAR(power_.leakage_w(t) + power_.dynamic_peak_w(t),
                platform_.params_of_type(t).peak_power_w, 1e-9);
    EXPECT_GT(power_.leakage_w(t), 0.0);
    EXPECT_GT(power_.dynamic_peak_w(t), 0.0);
  }
}

TEST_F(PowerModelTest, BusyPowerMonotoneInIpc) {
  for (CoreTypeId t = 0; t < platform_.num_types(); ++t) {
    double prev = 0;
    for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
      const double p =
          power_.busy_power_w(t, frac * power_.peak_ipc(t), 1.0);
      EXPECT_GT(p, prev);
      prev = p;
    }
  }
}

TEST_F(PowerModelTest, PowerStateOrdering) {
  for (CoreTypeId t = 0; t < platform_.num_types(); ++t) {
    const double sleep = power_.sleep_power_w(t);
    const double idle = power_.idle_power_w(t);
    const double busy_min = power_.busy_power_w(t, 0.01, 0.5);
    EXPECT_LT(sleep, idle);
    EXPECT_LT(idle, power_.busy_power_w(t, power_.peak_ipc(t), 1.0));
    EXPECT_GT(busy_min, sleep);
  }
}

TEST_F(PowerModelTest, ActivityScalesDynamicOnly) {
  const CoreTypeId t = 0;
  const double lo = power_.busy_power_w(t, 1.0, 0.8);
  const double hi = power_.busy_power_w(t, 1.0, 1.2);
  EXPECT_GT(hi, lo);
  // Leakage floor is common to both.
  EXPECT_GT(lo, power_.leakage_w(t));
}

TEST_F(PowerModelTest, HugeBurnsVastlyMoreThanSmall) {
  const CoreTypeId huge = platform_.type_by_name("Huge");
  const CoreTypeId small = platform_.type_by_name("Small");
  const double ph = power_.busy_power_w(huge, power_.peak_ipc(huge), 1.0);
  const double ps = power_.busy_power_w(small, power_.peak_ipc(small), 1.0);
  EXPECT_GT(ph / ps, 30.0);  // Table 2: 8.62 W vs 0.095 W ≈ 91×
}

TEST_F(PowerModelTest, EfficiencyExtremesFollowTable2) {
  // Peak GIPS/W derived from Table 2: the Small core is by far the most
  // efficient and the Huge core by far the least (Big vs Medium are close
  // by design and their order is not load-bearing).
  auto eff = [&](const char* name) {
    const CoreTypeId t = platform_.type_by_name(name);
    return power_.peak_ipc(t) * platform_.params_of_type(t).freq_ghz() /
           power_.peak_power_w(t);
  };
  const double huge = eff("Huge"), big = eff("Big"), medium = eff("Medium"),
               small = eff("Small");
  EXPECT_GT(small, big);
  EXPECT_GT(small, medium);
  EXPECT_GT(small, 3 * huge);
  EXPECT_GT(big, huge);
  EXPECT_GT(medium, huge);
}

TEST_F(PowerModelTest, AddressByCoreMatchesByType) {
  EXPECT_DOUBLE_EQ(power_.busy_power_core_w(2, 1.0, 1.0),
                   power_.busy_power_w(platform_.type_of(2), 1.0, 1.0));
}

TEST(PowerModelConfig, ExcessiveLeakageRejected) {
  const auto platform = arch::Platform::quad_heterogeneous();
  const perf::PerfModel perf(platform);
  PowerModel::Config cfg;
  cfg.leak_coeff = 5.0;  // would exceed the Small core's total budget
  EXPECT_THROW(PowerModel(platform, perf, cfg), std::logic_error);
}

}  // namespace
}  // namespace sb::power
