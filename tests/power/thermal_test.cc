#include "power/thermal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "arch/platform.h"

namespace sb::power {
namespace {

class ThermalTest : public ::testing::Test {
 protected:
  ThermalTest() : platform_(arch::Platform::quad_heterogeneous()) {}
  arch::Platform platform_;
};

TEST_F(ThermalTest, StartsAtAmbient) {
  ThermalModel t(platform_);
  for (CoreId c = 0; c < platform_.num_cores(); ++c) {
    EXPECT_DOUBLE_EQ(t.temperature_c(c), t.config().ambient_c);
  }
  EXPECT_DOUBLE_EQ(t.max_temperature_c(), t.config().ambient_c);
}

TEST_F(ThermalTest, HugeAtPeakApproachesEightyFive) {
  ThermalModel::Config cfg;
  cfg.neighbor_coupling = 0;  // isolate the node for the closed-form check
  ThermalModel t(platform_, cfg);
  EXPECT_NEAR(t.steady_state_c(0, 8.62), 45.0 + 55.0 / 11.99 * 8.62, 1e-9);
  EXPECT_GT(t.steady_state_c(0, 8.62), 80.0);
  EXPECT_LT(t.steady_state_c(0, 8.62), 90.0);
  // Converge: many time constants.
  std::vector<double> p = {8.62, 0, 0, 0};
  for (int i = 0; i < 200; ++i) t.step(p, milliseconds(10));
  EXPECT_NEAR(t.temperature_c(0), t.steady_state_c(0, 8.62), 0.2);
}

TEST_F(ThermalTest, SmallCoreStaysCool) {
  ThermalModel t(platform_);
  std::vector<double> p = {0, 0, 0, 0.095};
  for (int i = 0; i < 200; ++i) t.step(p, milliseconds(10));
  EXPECT_LT(t.temperature_c(3), 50.0);
}

TEST_F(ThermalTest, ExponentialApproach) {
  ThermalModel::Config cfg;
  cfg.neighbor_coupling = 0;
  cfg.tau_s = 0.05;
  ThermalModel t(platform_, cfg);
  std::vector<double> p = {4.0, 0, 0, 0};
  // After exactly one time constant, ~63% of the rise is achieved.
  t.step(p, milliseconds(50));
  const double rise = t.temperature_c(0) - cfg.ambient_c;
  const double full = t.steady_state_c(0, 4.0) - cfg.ambient_c;
  EXPECT_NEAR(rise / full, 1.0 - std::exp(-1.0), 0.02);
}

TEST_F(ThermalTest, NeighborCouplingWarmsAdjacentCore) {
  ThermalModel t(platform_);
  std::vector<double> p = {8.0, 0, 0, 0};
  for (int i = 0; i < 100; ++i) t.step(p, milliseconds(10));
  // Core 1 is idle but adjacent to the hot core 0; core 3 is farther away.
  EXPECT_GT(t.temperature_c(1), t.config().ambient_c + 2.0);
  EXPECT_GT(t.temperature_c(1), t.temperature_c(3));
}

TEST_F(ThermalTest, CoolsBackToAmbient) {
  ThermalModel t(platform_);
  std::vector<double> hot = {8.0, 1.0, 0.5, 0.1};
  for (int i = 0; i < 100; ++i) t.step(hot, milliseconds(10));
  EXPECT_GT(t.max_temperature_c(), 60.0);
  std::vector<double> off = {0, 0, 0, 0};
  for (int i = 0; i < 400; ++i) t.step(off, milliseconds(10));
  EXPECT_NEAR(t.max_temperature_c(), t.config().ambient_c, 0.5);
}

TEST_F(ThermalTest, ResetAndValidation) {
  ThermalModel t(platform_);
  std::vector<double> p = {8, 0, 0, 0};
  t.step(p, milliseconds(50));
  t.reset();
  EXPECT_DOUBLE_EQ(t.max_temperature_c(), t.config().ambient_c);

  EXPECT_THROW(t.step({1.0, 2.0}, milliseconds(1)), std::invalid_argument);
  EXPECT_THROW(t.temperature_c(9), std::out_of_range);
  ThermalModel::Config bad;
  bad.tau_s = 0;
  EXPECT_THROW(ThermalModel(platform_, bad), std::invalid_argument);
}

TEST_F(ThermalTest, ZeroDtIsNoop) {
  ThermalModel t(platform_);
  std::vector<double> p = {8, 8, 8, 8};
  t.step(p, 0);
  EXPECT_DOUBLE_EQ(t.max_temperature_c(), t.config().ambient_c);
}

}  // namespace
}  // namespace sb::power
