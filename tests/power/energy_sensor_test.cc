#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rng.h"
#include "power/energy_meter.h"
#include "power/sensor.h"

namespace sb::power {
namespace {

TEST(EnergyMeter, ChargesByState) {
  EnergyMeter m(2);
  m.add_busy(0, 2.0, seconds(1));
  m.add_idle(0, 0.5, seconds(2));
  m.add_sleep(1, 0.1, seconds(4));
  EXPECT_DOUBLE_EQ(m.busy_joules(0), 2.0);
  EXPECT_DOUBLE_EQ(m.idle_joules(0), 1.0);
  EXPECT_DOUBLE_EQ(m.sleep_joules(1), 0.4);
  EXPECT_DOUBLE_EQ(m.total_joules(0), 3.0);
  EXPECT_DOUBLE_EQ(m.total_joules(), 3.4);
  EXPECT_EQ(m.busy_time(0), seconds(1));
  EXPECT_EQ(m.sleep_time(1), seconds(4));
}

TEST(EnergyMeter, Validation) {
  EXPECT_THROW(EnergyMeter(0), std::invalid_argument);
  EnergyMeter m(1);
  EXPECT_THROW(m.add_busy(5, 1.0, 1), std::out_of_range);
  EXPECT_THROW(m.add_busy(0, -1.0, 1), std::invalid_argument);
  EXPECT_THROW(m.add_busy(0, 1.0, -1), std::invalid_argument);
}

TEST(EnergyMeter, Reset) {
  EnergyMeter m(1);
  m.add_busy(0, 1.0, seconds(1));
  m.reset();
  EXPECT_DOUBLE_EQ(m.total_joules(), 0.0);
  EXPECT_EQ(m.busy_time(0), 0);
}

TEST(PowerSensor, FirstReadReportsSinceConstruction) {
  EnergyMeter m(1);
  PowerSensorBank::Config cfg;
  cfg.relative_noise_sigma = 0;
  cfg.quantum_joules = 0;
  PowerSensorBank s(m, cfg, Rng(1));
  m.add_busy(0, 1.0, seconds(2));
  EXPECT_DOUBLE_EQ(s.read_joules(0), 2.0);
}

TEST(PowerSensor, DeltaSemantics) {
  EnergyMeter m(1);
  PowerSensorBank::Config cfg;
  cfg.relative_noise_sigma = 0;
  cfg.quantum_joules = 0;
  PowerSensorBank s(m, cfg, Rng(1));
  m.add_busy(0, 1.0, seconds(1));
  EXPECT_DOUBLE_EQ(s.read_joules(0), 1.0);
  EXPECT_DOUBLE_EQ(s.read_joules(0), 0.0);  // nothing since last read
  m.add_busy(0, 2.0, seconds(1));
  EXPECT_DOUBLE_EQ(s.read_joules(0), 2.0);
}

TEST(PowerSensor, AvgPowerOverWindow) {
  EnergyMeter m(1);
  PowerSensorBank::Config cfg;
  cfg.relative_noise_sigma = 0;
  cfg.quantum_joules = 0;
  PowerSensorBank s(m, cfg, Rng(1));
  m.add_busy(0, 3.0, milliseconds(60));
  EXPECT_NEAR(s.read_avg_power_w(0, milliseconds(60)), 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.read_avg_power_w(0, 0), 0.0);
}

TEST(PowerSensor, NoiseIsUnbiasedAndBounded) {
  EnergyMeter m(1);
  PowerSensorBank::Config cfg;
  cfg.relative_noise_sigma = 0.01;
  cfg.quantum_joules = 0;
  PowerSensorBank s(m, cfg, Rng(7));
  double sum = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    m.add_busy(0, 1.0, seconds(1));
    sum += s.read_joules(0);
  }
  EXPECT_NEAR(sum / n, 1.0, 0.002);  // ~1% sigma, n large
}

TEST(PowerSensor, Quantization) {
  EnergyMeter m(1);
  PowerSensorBank::Config cfg;
  cfg.relative_noise_sigma = 0;
  cfg.quantum_joules = 0.5;
  PowerSensorBank s(m, cfg, Rng(1));
  m.add_busy(0, 1.0, nanoseconds(600'000'000));  // 0.6 J
  EXPECT_DOUBLE_EQ(s.read_joules(0), 0.5);
}

TEST(PowerSensor, NeverNegative) {
  EnergyMeter m(1);
  PowerSensorBank::Config cfg;
  cfg.relative_noise_sigma = 3.0;  // absurd noise to force negatives
  cfg.quantum_joules = 0;
  PowerSensorBank s(m, cfg, Rng(3));
  for (int i = 0; i < 200; ++i) {
    m.add_busy(0, 1.0, milliseconds(1));
    EXPECT_GE(s.read_joules(0), 0.0);
  }
}

TEST(PowerSensor, Validation) {
  EnergyMeter m(1);
  PowerSensorBank::Config bad;
  bad.relative_noise_sigma = -1;
  EXPECT_THROW(PowerSensorBank(m, bad, Rng(1)), std::invalid_argument);
  PowerSensorBank::Config ok;
  PowerSensorBank s(m, ok, Rng(1));
  EXPECT_THROW(s.read_joules(9), std::out_of_range);
}

}  // namespace
}  // namespace sb::power
