#include "arch/memory_system.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sb::arch {
namespace {

TEST(SharedBus, UnloadedLatencyIsBase) {
  SharedBus bus(4);
  EXPECT_DOUBLE_EQ(bus.utilization(), 0.0);
  EXPECT_DOUBLE_EQ(bus.inflation(), 1.0);
  EXPECT_DOUBLE_EQ(bus.effective_latency_ns(), bus.config().base_latency_ns);
}

TEST(SharedBus, TrafficRaisesUtilization) {
  SharedBus bus(2);
  // 1e6 misses × 64 B over 1 ms = 64 GB/s demanded >> 12.8 GB/s capacity.
  for (int i = 0; i < 50; ++i) bus.record_traffic(0, 1e6, milliseconds(1));
  EXPECT_GT(bus.utilization(), 0.9);
  EXPECT_GT(bus.inflation(), 2.0);
  EXPECT_LE(bus.inflation(), bus.config().max_inflation);
}

TEST(SharedBus, UtilizationClampedToOne) {
  SharedBus bus(1);
  for (int i = 0; i < 100; ++i) bus.record_traffic(0, 1e8, milliseconds(1));
  EXPECT_DOUBLE_EQ(bus.utilization(), 1.0);
  EXPECT_DOUBLE_EQ(bus.inflation(), bus.config().max_inflation);
}

TEST(SharedBus, TrafficIsPerCoreAndAdditive) {
  SharedBus bus(2);
  bus.record_traffic(0, 2e4, milliseconds(1));
  const double u1 = bus.utilization();
  bus.record_traffic(1, 2e4, milliseconds(1));
  EXPECT_GT(bus.utilization(), u1);
}

TEST(SharedBus, QuietCoreDecaysViaZeroTraffic) {
  SharedBus bus(1);
  for (int i = 0; i < 30; ++i) bus.record_traffic(0, 5e4, milliseconds(1));
  const double busy = bus.utilization();
  for (int i = 0; i < 30; ++i) bus.record_traffic(0, 0, milliseconds(1));
  EXPECT_LT(bus.utilization(), busy * 0.05);
}

TEST(SharedBus, ResetClears) {
  SharedBus bus(2);
  bus.record_traffic(0, 1e6, milliseconds(1));
  bus.reset();
  EXPECT_DOUBLE_EQ(bus.utilization(), 0.0);
}

TEST(SharedBus, ZeroWindowIgnored) {
  SharedBus bus(1);
  bus.record_traffic(0, 1e6, 0);
  EXPECT_DOUBLE_EQ(bus.utilization(), 0.0);
}

TEST(SharedBus, Validation) {
  EXPECT_THROW(SharedBus(0), std::invalid_argument);
  SharedBus::Config bad;
  bad.bandwidth_gbps = 0;
  EXPECT_THROW(SharedBus(2, bad), std::invalid_argument);
  SharedBus bus(2);
  EXPECT_THROW(bus.record_traffic(5, 1, 1), std::out_of_range);
}

TEST(SharedBus, InflationMonotoneInUtilization) {
  SharedBus bus(1);
  double prev = bus.inflation();
  for (int i = 0; i < 20; ++i) {
    bus.record_traffic(0, 3e4, milliseconds(1));
    EXPECT_GE(bus.inflation() + 1e-12, prev);
    prev = bus.inflation();
  }
}

}  // namespace
}  // namespace sb::arch
