#include "arch/cache_model.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

namespace sb::arch {
namespace {

TEST(CacheMissRate, LargerCacheNeverMissesMore) {
  double prev = 1.0;
  for (double size : {8.0, 16.0, 32.0, 64.0, 128.0, 256.0}) {
    const double mr = cache_miss_rate(0.08, 64.0, size, 1.2);
    EXPECT_LE(mr, prev) << "size=" << size;
    prev = mr;
  }
}

TEST(CacheMissRate, FootprintFitsMeansNearFloor) {
  // Footprint well below cache size: only cold misses remain.
  const double mr = cache_miss_rate(0.08, 1.0, 1024.0, 2.0);
  EXPECT_LT(mr, 0.001);
  EXPECT_GE(mr, 1e-5);
}

TEST(CacheMissRate, PressureSaturatesAtRefRate) {
  EXPECT_DOUBLE_EQ(cache_miss_rate(0.08, 4096.0, 16.0, 1.2), 0.08);
  // Larger footprint cannot exceed ref rate (pressure capped at 1).
  EXPECT_DOUBLE_EQ(cache_miss_rate(0.08, 1 << 20, 16.0, 1.2), 0.08);
}

TEST(CacheMissRate, CapApplies) {
  EXPECT_DOUBLE_EQ(cache_miss_rate(0.9, 4096.0, 16.0, 1.0), 0.5);
}

TEST(CacheMissRate, ZeroRefRateGivesFloor) {
  EXPECT_DOUBLE_EQ(cache_miss_rate(0.0, 64, 32, 1.2), 1e-5);
}

TEST(CacheMissRate, InvalidSizeThrows) {
  EXPECT_THROW(cache_miss_rate(0.05, 64, 0, 1.2), std::invalid_argument);
  EXPECT_THROW(cache_miss_rate(0.05, -1, 32, 1.2), std::invalid_argument);
}

class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, HigherLocalityMeansFewerMissesWhenFitting) {
  const double alpha = GetParam();
  // pressure < 1, so a larger exponent shrinks the miss rate.
  const double base = cache_miss_rate(0.08, 16.0, 32.0, alpha);
  const double tighter = cache_miss_rate(0.08, 16.0, 32.0, alpha + 0.5);
  EXPECT_LE(tighter, base);
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep,
                         ::testing::Values(0.3, 0.7, 1.0, 1.5, 2.5));

TEST(TlbMissRate, ReachScaling) {
  // 32 entries × 4 KB = 128 KB reach.
  const double small_fp = tlb_miss_rate(0.004, 16.0, 32);
  const double big_fp = tlb_miss_rate(0.004, 4096.0, 32);
  EXPECT_LT(small_fp, big_fp);
  EXPECT_DOUBLE_EQ(big_fp, 0.004);  // saturated pressure
}

TEST(TlbMissRate, MoreEntriesFewerMisses) {
  // Footprint (200 KB) between the 32-entry reach (128 KB, saturated) and
  // the 64-entry reach (256 KB, unsaturated).
  EXPECT_LT(tlb_miss_rate(0.004, 200.0, 64), tlb_miss_rate(0.004, 200.0, 32));
}

TEST(TlbMissRate, InvalidArgsThrow) {
  EXPECT_THROW(tlb_miss_rate(0.004, 64, 0), std::invalid_argument);
  EXPECT_THROW(tlb_miss_rate(0.004, 64, 32, 0.0), std::invalid_argument);
}

TEST(CacheWarmup, ColdStartFactor) {
  const CacheWarmupModel w(3.0, 400'000);
  EXPECT_DOUBLE_EQ(w.miss_factor(0), 3.0);
}

TEST(CacheWarmup, FullyWarmAfterWindow) {
  const CacheWarmupModel w(3.0, 400'000);
  EXPECT_DOUBLE_EQ(w.miss_factor(400'000), 1.0);
  EXPECT_DOUBLE_EQ(w.miss_factor(10'000'000), 1.0);
}

TEST(CacheWarmup, MonotoneDecay) {
  const CacheWarmupModel w(3.0, 400'000);
  double prev = w.miss_factor(0);
  for (std::uint64_t i = 50'000; i <= 400'000; i += 50'000) {
    const double f = w.miss_factor(i);
    EXPECT_LE(f, prev);
    EXPECT_GE(f, 1.0);
    prev = f;
  }
}

TEST(CacheWarmup, HalfwayIsHalfExcess) {
  const CacheWarmupModel w(3.0, 400'000);
  EXPECT_NEAR(w.miss_factor(200'000), 2.0, 1e-12);
}

TEST(CacheWarmup, ZeroWindowAlwaysWarm) {
  const CacheWarmupModel w(3.0, 0);
  EXPECT_DOUBLE_EQ(w.miss_factor(0), 1.0);
}

}  // namespace
}  // namespace sb::arch
