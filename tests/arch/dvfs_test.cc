#include "arch/dvfs.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "arch/core_params.h"

namespace sb::arch {
namespace {

TEST(OppTable, ValidationRules) {
  EXPECT_THROW(OppTable({}), std::invalid_argument);
  EXPECT_THROW(OppTable({{0, 0.8}}), std::invalid_argument);
  EXPECT_THROW(OppTable({{500, 0.7}, {500, 0.8}}), std::invalid_argument)
      << "frequencies must strictly increase";
  EXPECT_THROW(OppTable({{500, 0.8}, {1000, 0.7}}), std::invalid_argument)
      << "voltage must not decrease with frequency";
  EXPECT_NO_THROW(OppTable({{500, 0.7}, {1000, 0.7}, {1500, 0.9}}));
}

TEST(OppTable, NominalOnly) {
  const auto t = OppTable::nominal_only(big_core());
  EXPECT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t.highest().freq_mhz, 1500);
  EXPECT_DOUBLE_EQ(t.highest().vdd, 0.8);
}

TEST(OppTable, TypicalHasFourPointsToppingAtNominal) {
  const auto t = OppTable::typical_for(huge_core());
  EXPECT_EQ(t.size(), 4u);
  EXPECT_DOUBLE_EQ(t.highest().freq_mhz, 2000);
  EXPECT_DOUBLE_EQ(t.highest().vdd, 1.0);
  EXPECT_DOUBLE_EQ(t.lowest().freq_mhz, 800);
  EXPECT_NEAR(t.lowest().vdd, 0.7, 1e-9);  // 0.5 + 0.5·0.4 of 1.0 V
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GT(t.at(i).freq_mhz, t.at(i - 1).freq_mhz);
    EXPECT_GE(t.at(i).vdd, t.at(i - 1).vdd);
  }
}

TEST(OppTable, IndexForAtLeast) {
  const auto t = OppTable::typical_for(medium_core());  // 400/600/800/1000 MHz
  EXPECT_EQ(t.index_for_at_least(100), 0u);
  EXPECT_EQ(t.index_for_at_least(500), 1u);
  EXPECT_EQ(t.index_for_at_least(1000), 3u);
  EXPECT_EQ(t.index_for_at_least(5000), 3u);  // clamped to top
  EXPECT_THROW(t.at(4), std::out_of_range);
}

TEST(DvfsScaling, NominalIsUnity) {
  const auto p = big_core();
  const OperatingPoint nominal{p.freq_mhz, p.vdd};
  EXPECT_DOUBLE_EQ(dynamic_scale(nominal, p), 1.0);
  EXPECT_DOUBLE_EQ(leakage_scale(nominal, p), 1.0);
}

TEST(DvfsScaling, CubicSavingsAtLowPoint) {
  const auto p = big_core();
  const OperatingPoint half{p.freq_mhz * 0.5, p.vdd * 0.75};
  // V²f: 0.75² × 0.5 ≈ 0.281
  EXPECT_NEAR(dynamic_scale(half, p), 0.28125, 1e-9);
  // V³: 0.75³ ≈ 0.422
  EXPECT_NEAR(leakage_scale(half, p), 0.421875, 1e-9);
}

TEST(DvfsScaling, MonotoneInFrequency) {
  const auto p = small_core();
  const auto t = OppTable::typical_for(p);
  double prev = 0;
  for (const auto& opp : t.points()) {
    const double s = dynamic_scale(opp, p);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(DvfsScaling, BadNominalThrows) {
  CoreParams p = big_core();
  p.vdd = 0;
  EXPECT_THROW(leakage_scale({1000, 0.8}, p), std::invalid_argument);
  p = big_core();
  p.freq_mhz = 0;
  EXPECT_THROW(dynamic_scale({1000, 0.8}, p), std::invalid_argument);
}

}  // namespace
}  // namespace sb::arch
