#include "arch/platform_loader.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sb::arch {
namespace {

TEST(PlatformLoader, ParsesTwoTypeDescription) {
  std::stringstream in(R"(
# prime + efficiency
core Prime x2
  issue_width 6
  rob_size 256
  freq_mhz 2800
  vdd 0.95
  area_mm2 8.0
  peak_power_w 4.5
core Eff x4
  issue_width 2
  freq_mhz 1400
  peak_power_w 0.4
)");
  const Platform p = load_platform(in);
  EXPECT_EQ(p.num_cores(), 6);
  EXPECT_EQ(p.num_types(), 2);
  const auto& prime = p.params_of_type(p.type_by_name("Prime"));
  EXPECT_EQ(prime.issue_width, 6);
  EXPECT_EQ(prime.rob_size, 256);
  EXPECT_DOUBLE_EQ(prime.freq_mhz, 2800);
  EXPECT_DOUBLE_EQ(prime.peak_power_w, 4.5);
  const auto& eff = p.params_of_type(p.type_by_name("Eff"));
  EXPECT_EQ(eff.issue_width, 2);
  // Unspecified fields fall back to Medium-class defaults.
  EXPECT_EQ(eff.rob_size, 64);
  EXPECT_DOUBLE_EQ(eff.l1d_kb, 16);
}

TEST(PlatformLoader, RoundTripsThroughSave) {
  std::stringstream in(R"(
core Big x1
  issue_width 4
  rob_size 128
  freq_mhz 1500
  vdd 0.8
  area_mm2 5.08
  peak_power_w 1.41
core Tiny x3
  issue_width 1
  freq_mhz 600
  peak_power_w 0.12
)");
  const Platform original = load_platform(in);
  std::stringstream buf;
  save_platform(buf, original);
  const Platform restored = load_platform(buf);
  EXPECT_EQ(restored.num_cores(), original.num_cores());
  EXPECT_EQ(restored.num_types(), original.num_types());
  for (CoreTypeId t = 0; t < original.num_types(); ++t) {
    EXPECT_TRUE(restored.params_of_type(t).same_microarchitecture(
        original.params_of_type(t)))
        << original.params_of_type(t).name;
    EXPECT_DOUBLE_EQ(restored.params_of_type(t).peak_power_w,
                     original.params_of_type(t).peak_power_w);
  }
}

TEST(PlatformLoader, CommentsAndBlanksIgnored) {
  std::stringstream in(
      "# leading comment\n\ncore A x1  # trailing comment\n"
      "  freq_mhz 900 # another\n\n");
  const Platform p = load_platform(in);
  EXPECT_EQ(p.num_cores(), 1);
  EXPECT_DOUBLE_EQ(p.params_of(0).freq_mhz, 900);
}

TEST(PlatformLoader, Errors) {
  std::stringstream no_block("freq_mhz 1000\n");
  EXPECT_THROW(load_platform(no_block), std::runtime_error);

  std::stringstream bad_count("core A x0\n");
  EXPECT_THROW(load_platform(bad_count), std::runtime_error);

  std::stringstream bad_header("core OnlyName\n");
  EXPECT_THROW(load_platform(bad_header), std::runtime_error);

  std::stringstream unknown("core A x1\n  warp_drive 9\n");
  EXPECT_THROW(load_platform(unknown), std::runtime_error);

  std::stringstream no_value("core A x1\n  freq_mhz\n");
  EXPECT_THROW(load_platform(no_value), std::runtime_error);

  std::stringstream junk("core A x1\n  freq_mhz 100 200\n");
  EXPECT_THROW(load_platform(junk), std::runtime_error);

  std::stringstream empty("");
  EXPECT_THROW(load_platform(empty), std::logic_error);  // no cores

  // Physically invalid parameters are caught by Platform::validate.
  std::stringstream invalid("core A x1\n  freq_mhz -5\n");
  EXPECT_THROW(load_platform(invalid), std::logic_error);

  EXPECT_THROW(load_platform_file("/no/such/platform.txt"),
               std::runtime_error);
}

TEST(PlatformLoader, ErrorsCarryLineNumbers) {
  std::stringstream bad("core A x1\n  freq_mhz 100\n  bogus 3\n");
  try {
    load_platform(bad);
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(PlatformLoader, GeneratesBigLittle) {
  const Platform p = generate_platform("2x2");
  EXPECT_EQ(p.num_cores(), 4);
  EXPECT_EQ(p.num_types(), 2);
  EXPECT_EQ(p.cores_of_type(0).size(), 2u);
  EXPECT_EQ(p.cores_of_type(1).size(), 2u);
  // Type-major layout: big block first, LITTLE block after.
  EXPECT_EQ(p.type_of(0), p.type_of(1));
  EXPECT_EQ(p.type_of(2), p.type_of(3));
  EXPECT_NE(p.type_of(0), p.type_of(2));
}

TEST(PlatformLoader, GeneratesClusteredThousandCorePlatform) {
  const Platform p = generate_platform("32x96:8");
  EXPECT_EQ(p.num_cores(), 1024);
  EXPECT_EQ(p.num_types(), 2);
  EXPECT_EQ(p.cores_of_type(0).size(), 256u);
  EXPECT_EQ(p.cores_of_type(1).size(), 768u);
}

TEST(PlatformLoader, GeneratedSingleTypePlatforms) {
  EXPECT_EQ(generate_platform("4x0").num_types(), 1);
  EXPECT_EQ(generate_platform("0x4").num_types(), 1);
  EXPECT_EQ(generate_platform("0x1:3").num_cores(), 3);
}

TEST(PlatformLoader, GeneratedPlatformRoundTripsThroughSave) {
  // The generated layout is type-major precisely so save_platform (which
  // groups by type) reproduces it: save -> load must preserve every core's
  // type and per-type parameters.
  const Platform original = generate_platform("2x6:2");
  std::stringstream buf;
  save_platform(buf, original);
  const Platform restored = load_platform(buf);
  ASSERT_EQ(restored.num_cores(), original.num_cores());
  ASSERT_EQ(restored.num_types(), original.num_types());
  for (CoreId c = 0; c < original.num_cores(); ++c) {
    EXPECT_EQ(restored.type_of(c), original.type_of(c)) << "core " << c;
  }
  for (CoreTypeId t = 0; t < original.num_types(); ++t) {
    EXPECT_TRUE(restored.params_of_type(t).same_microarchitecture(
        original.params_of_type(t)));
  }
}

TEST(PlatformLoader, GeneratedMatchesHandWrittenQuadFixture) {
  // gen:2x2 must describe the same platform as the equivalent hand-written
  // big.LITTLE fixture loaded from text (modulo type names).
  const Platform gen = generate_platform("2x2");
  std::stringstream buf;
  save_platform(buf, gen);
  const Platform fixture = load_platform(buf);
  EXPECT_EQ(fixture.num_cores(), gen.num_cores());
  for (CoreId c = 0; c < gen.num_cores(); ++c) {
    EXPECT_DOUBLE_EQ(fixture.params_of(c).freq_mhz, gen.params_of(c).freq_mhz);
    EXPECT_DOUBLE_EQ(fixture.params_of(c).peak_power_w,
                     gen.params_of(c).peak_power_w);
  }
}

TEST(PlatformLoader, GenerateErrors) {
  EXPECT_THROW(generate_platform(""), std::invalid_argument);
  EXPECT_THROW(generate_platform("4"), std::invalid_argument);      // no 'x'
  EXPECT_THROW(generate_platform("x4"), std::invalid_argument);     // no big
  EXPECT_THROW(generate_platform("4x"), std::invalid_argument);     // no LITTLE
  EXPECT_THROW(generate_platform("0x0"), std::invalid_argument);    // empty
  EXPECT_THROW(generate_platform("0x0:4"), std::invalid_argument);  // empty
  EXPECT_THROW(generate_platform("2x2:0"), std::invalid_argument);
  EXPECT_THROW(generate_platform("2x2:-1"), std::invalid_argument);
  EXPECT_THROW(generate_platform("-2x2"), std::invalid_argument);
  EXPECT_THROW(generate_platform("2x2x2"), std::invalid_argument);
  EXPECT_THROW(generate_platform("a2x2"), std::invalid_argument);
  EXPECT_THROW(generate_platform("2x2:junk"), std::invalid_argument);
  // Totals beyond kMaxCores are rejected even when each field parses.
  EXPECT_THROW(generate_platform("512x512:3"), std::invalid_argument);
}

}  // namespace
}  // namespace sb::arch
