#include "arch/platform.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sb::arch {
namespace {

TEST(Platform, QuadHeterogeneous) {
  const Platform p = Platform::quad_heterogeneous();
  EXPECT_EQ(p.num_cores(), 4);
  EXPECT_EQ(p.num_types(), 4);
  EXPECT_EQ(p.params_of(0).name, "Huge");
  EXPECT_EQ(p.params_of(1).name, "Big");
  EXPECT_EQ(p.params_of(2).name, "Medium");
  EXPECT_EQ(p.params_of(3).name, "Small");
  for (CoreId c = 0; c < 4; ++c) EXPECT_EQ(p.type_of(c), c);
}

TEST(Platform, OctaBigLittle) {
  const Platform p = Platform::octa_big_little();
  EXPECT_EQ(p.num_cores(), 8);
  EXPECT_EQ(p.num_types(), 2);
  for (CoreId c = 0; c < 4; ++c) EXPECT_EQ(p.params_of(c).name, "A15");
  for (CoreId c = 4; c < 8; ++c) EXPECT_EQ(p.params_of(c).name, "A7");
  EXPECT_EQ(p.cores_of_type(0).size(), 4u);
  EXPECT_EQ(p.cores_of_type(1).size(), 4u);
}

TEST(Platform, ScaledHeterogeneous) {
  const Platform p = Platform::scaled_heterogeneous(8);
  EXPECT_EQ(p.num_cores(), 32);
  EXPECT_EQ(p.num_types(), 4);
  EXPECT_EQ(p.cores_of_type(2).size(), 8u);
}

TEST(Platform, Homogeneous) {
  const Platform p = Platform::homogeneous(medium_core(), 6);
  EXPECT_EQ(p.num_cores(), 6);
  EXPECT_EQ(p.num_types(), 1);
}

TEST(Platform, TypeDeduplicationByName) {
  Platform p;
  const CoreTypeId a = p.add_core_type(big_core());
  const CoreTypeId b = p.add_core_type(big_core());
  EXPECT_EQ(a, b);
  EXPECT_EQ(p.num_types(), 1);
}

TEST(Platform, NameCollisionWithDifferentMicroarchThrows) {
  Platform p;
  p.add_core_type(big_core());
  CoreParams fake = big_core();
  fake.rob_size = 999;
  EXPECT_THROW(p.add_core_type(fake), std::logic_error);
}

TEST(Platform, TypeByName) {
  const Platform p = Platform::quad_heterogeneous();
  EXPECT_EQ(p.type_by_name("Medium"), 2);
  EXPECT_THROW(p.type_by_name("NoSuch"), std::out_of_range);
}

TEST(Platform, TotalArea) {
  const Platform p = Platform::quad_heterogeneous();
  EXPECT_NEAR(p.total_area_mm2(), 11.99 + 5.08 + 3.04 + 2.27, 1e-9);
}

TEST(Platform, ValidationCatchesEmptyAndBadParams) {
  Platform empty;
  EXPECT_THROW(empty.validate(), std::logic_error);

  Platform bad;
  CoreParams p = small_core();
  p.freq_mhz = 0;
  bad.add_cores(p, 1);
  EXPECT_THROW(bad.validate(), std::logic_error);
}

TEST(Platform, BoundsChecking) {
  const Platform p = Platform::quad_heterogeneous();
  EXPECT_THROW(p.type_of(-1), std::out_of_range);
  EXPECT_THROW(p.type_of(4), std::out_of_range);
  EXPECT_THROW(p.params_of_type(9), std::out_of_range);
}

TEST(Platform, AddCoresValidation) {
  Platform p;
  const CoreTypeId t = p.add_core_type(small_core());
  EXPECT_THROW(p.add_cores(t, -1), std::invalid_argument);
  EXPECT_THROW(p.add_cores(static_cast<CoreTypeId>(7), 1), std::out_of_range);
}

}  // namespace
}  // namespace sb::arch
