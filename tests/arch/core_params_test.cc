#include "arch/core_params.h"

#include <gtest/gtest.h>

namespace sb::arch {
namespace {

// Table 2 of the paper, verbatim.
TEST(CoreParams, HugeMatchesTable2) {
  const CoreParams p = huge_core();
  EXPECT_EQ(p.name, "Huge");
  EXPECT_EQ(p.issue_width, 8);
  EXPECT_EQ(p.lq_size, 32);
  EXPECT_EQ(p.sq_size, 32);
  EXPECT_EQ(p.iq_size, 64);
  EXPECT_EQ(p.rob_size, 192);
  EXPECT_EQ(p.num_regs, 256);
  EXPECT_DOUBLE_EQ(p.l1i_kb, 64);
  EXPECT_DOUBLE_EQ(p.l1d_kb, 64);
  EXPECT_DOUBLE_EQ(p.freq_mhz, 2000);
  EXPECT_DOUBLE_EQ(p.vdd, 1.0);
  EXPECT_DOUBLE_EQ(p.area_mm2, 11.99);
  EXPECT_DOUBLE_EQ(p.peak_power_w, 8.62);
}

TEST(CoreParams, BigMatchesTable2) {
  const CoreParams p = big_core();
  EXPECT_EQ(p.issue_width, 4);
  EXPECT_EQ(p.rob_size, 128);
  EXPECT_EQ(p.iq_size, 32);
  EXPECT_DOUBLE_EQ(p.l1d_kb, 32);
  EXPECT_DOUBLE_EQ(p.freq_mhz, 1500);
  EXPECT_DOUBLE_EQ(p.vdd, 0.8);
  EXPECT_DOUBLE_EQ(p.peak_power_w, 1.41);
  EXPECT_DOUBLE_EQ(p.area_mm2, 5.08);
}

TEST(CoreParams, MediumMatchesTable2) {
  const CoreParams p = medium_core();
  EXPECT_EQ(p.issue_width, 2);
  EXPECT_EQ(p.rob_size, 64);
  EXPECT_DOUBLE_EQ(p.l1i_kb, 16);
  EXPECT_DOUBLE_EQ(p.freq_mhz, 1000);
  EXPECT_DOUBLE_EQ(p.vdd, 0.7);
  EXPECT_DOUBLE_EQ(p.peak_power_w, 0.53);
}

TEST(CoreParams, SmallMatchesTable2) {
  const CoreParams p = small_core();
  EXPECT_EQ(p.issue_width, 1);
  EXPECT_EQ(p.rob_size, 64);
  EXPECT_DOUBLE_EQ(p.freq_mhz, 500);
  EXPECT_DOUBLE_EQ(p.vdd, 0.6);
  EXPECT_DOUBLE_EQ(p.peak_power_w, 0.095);
  EXPECT_DOUBLE_EQ(p.area_mm2, 2.27);
}

TEST(CoreParams, FrequencyHelpers) {
  const CoreParams p = huge_core();  // 2 GHz
  EXPECT_DOUBLE_EQ(p.freq_ghz(), 2.0);
  EXPECT_DOUBLE_EQ(p.cycles_in(1000), 2000.0);
  EXPECT_DOUBLE_EQ(p.ns_for_cycles(2000.0), 1000.0);
}

TEST(CoreParams, MicroarchitectureEquality) {
  CoreParams a = big_core();
  CoreParams b = big_core();
  b.name = "Renamed";
  EXPECT_TRUE(a.same_microarchitecture(b));
  b.rob_size += 1;
  EXPECT_FALSE(a.same_microarchitecture(b));
}

TEST(CoreParams, BigLittlePairIsOrdered) {
  const CoreParams a15 = a15_core();
  const CoreParams a7 = a7_core();
  EXPECT_GT(a15.issue_width, a7.issue_width);
  EXPECT_GT(a15.freq_mhz, a7.freq_mhz);
  EXPECT_GT(a15.peak_power_w, a7.peak_power_w);
  EXPECT_GT(a15.area_mm2, a7.area_mm2);
}

TEST(CoreParams, StrictlyDecreasingStrengthAcrossTypes) {
  const CoreParams types[] = {huge_core(), big_core(), medium_core(),
                              small_core()};
  for (int i = 0; i + 1 < 4; ++i) {
    EXPECT_GE(types[i].issue_width, types[i + 1].issue_width);
    EXPECT_GE(types[i].rob_size, types[i + 1].rob_size);
    EXPECT_GT(types[i].freq_mhz, types[i + 1].freq_mhz);
    EXPECT_GT(types[i].peak_power_w, types[i + 1].peak_power_w);
    EXPECT_GT(types[i].area_mm2, types[i + 1].area_mm2);
  }
}

}  // namespace
}  // namespace sb::arch
