// Property tests for the scheduler-trace replay format and compiler:
// save/load round-trips, load determinism, hand-computed duty-cycle
// compilation, and the documented rejection paths (std::runtime_error with
// a line number, never anything else).
#include "workload/sched_replay.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

namespace sb::workload {
namespace {

/// A small but representative valid trace: two background tasks and two
/// interactive tasks, one of which exits.
std::string sample_trace_csv() {
  std::ostringstream os;
  os << replay_csv_header() << "\n"
     << "spawn,0.000,bg,builtin:canneal\n"
     << "spawn,100.000,a,builtin:IMB_MTHI\n"
     << "spawn,200.500,b,builtin:IMB_LTHI\n"
     << "sleep,1000.000,a,\n"
     << "sleep,1500.250,b,\n"
     << "wake,3000.000,a,\n"
     << "wake,3500.250,b,\n"
     << "sleep,4000.000,a,\n"
     << "exit,5000.000,a,\n"
     << "sleep,6000.000,b,\n"
     << "wake,8000.000,b,\n";
  return os.str();
}

TEST(SchedReplay, ParsesSampleTrace) {
  std::istringstream in(sample_trace_csv());
  const ReplayTrace t = parse_replay_trace(in);
  EXPECT_EQ(t.events.size(), 11u);
  EXPECT_EQ(t.num_tasks(), 3u);
  EXPECT_EQ(t.span(), microseconds(8000));
  EXPECT_EQ(t.events[0].kind, ReplayEvent::Kind::Spawn);
  EXPECT_EQ(t.events[0].task, "bg");
  EXPECT_EQ(t.events[0].ref, "builtin:canneal");
  // 200.5 us parses to the exact nanosecond value.
  EXPECT_EQ(t.events[2].at, 200'500);
}

TEST(SchedReplay, SaveLoadRoundTripIsExact) {
  std::istringstream in(sample_trace_csv());
  const ReplayTrace original = parse_replay_trace(in);

  std::ostringstream saved;
  save_replay_trace(saved, original);
  std::istringstream in2(saved.str());
  const ReplayTrace restored = parse_replay_trace(in2);
  EXPECT_EQ(restored, original);

  // Saving the restored trace reproduces the identical bytes (the format
  // is canonical: fixed-point microseconds, three fractional digits).
  std::ostringstream saved2;
  save_replay_trace(saved2, restored);
  EXPECT_EQ(saved2.str(), saved.str());
}

TEST(SchedReplay, FileRoundTrip) {
  const std::string path = "sched_replay_test_tmp.csv";
  std::istringstream in(sample_trace_csv());
  const ReplayTrace original = parse_replay_trace(in);
  save_replay_trace_file(path, original);
  const ReplayTrace restored = load_replay_trace_file(path);
  EXPECT_EQ(restored, original);
  std::remove(path.c_str());
}

TEST(SchedReplay, TwoLoadsAreIdentical) {
  std::istringstream a(sample_trace_csv());
  std::istringstream b(sample_trace_csv());
  const ReplayTrace ta = parse_replay_trace(a);
  const ReplayTrace tb = parse_replay_trace(b);
  EXPECT_EQ(ta, tb);

  // ...and so are the compiled schedules (the compiler is a pure function
  // of the trace and options — zero jitter, no hidden state).
  const ReplaySchedule sa = compile_replay_schedule(ta);
  const ReplaySchedule sb2 = compile_replay_schedule(tb);
  ASSERT_EQ(sa.tasks.size(), sb2.tasks.size());
  EXPECT_EQ(sa.span, sb2.span);
  for (std::size_t i = 0; i < sa.tasks.size(); ++i) {
    EXPECT_EQ(sa.tasks[i].name, sb2.tasks[i].name);
    EXPECT_EQ(sa.tasks[i].spawn_at, sb2.tasks[i].spawn_at);
    EXPECT_EQ(sa.tasks[i].behavior.burst_instructions,
              sb2.tasks[i].behavior.burst_instructions);
    EXPECT_EQ(sa.tasks[i].behavior.sleep_mean_ns,
              sb2.tasks[i].behavior.sleep_mean_ns);
    EXPECT_EQ(sa.tasks[i].behavior.total_instructions,
              sb2.tasks[i].behavior.total_instructions);
  }
}

TEST(SchedReplay, CompilesHandComputedDutyCycle) {
  // a: busy [0,1000] and [3000,4000] us (mean 1e6 ns), one completed sleep
  //    [1000,3000] us, exits asleep at 5000 us.
  // b: busy [100,1100] us plus the truncated final interval [3100,5000] us
  //    (mean 1.45e6 ns), one completed sleep [1100,3100] us, never exits.
  std::ostringstream os;
  os << replay_csv_header() << "\n"
     << "spawn,0.000,a,builtin:canneal\n"
     << "spawn,100.000,b,builtin:IMB_MTHI\n"
     << "sleep,1000.000,a,\n"
     << "sleep,1100.000,b,\n"
     << "wake,3000.000,a,\n"
     << "wake,3100.000,b,\n"
     << "sleep,4000.000,a,\n"
     << "exit,5000.000,a,\n";
  std::istringstream in(os.str());
  const ReplayTrace trace = parse_replay_trace(in);

  ReplayCompileOptions opts;
  opts.ips_hint = 2.0;
  const ReplaySchedule sched = compile_replay_schedule(trace, opts);
  ASSERT_EQ(sched.tasks.size(), 2u);
  EXPECT_EQ(sched.span, microseconds(5000));

  const ReplayTask& a = sched.tasks[0];  // spawn order
  EXPECT_EQ(a.name, "a");
  EXPECT_EQ(a.spawn_at, 0);
  EXPECT_EQ(a.wakes, 1u);
  EXPECT_EQ(a.busy_ns, 2'000'000);
  EXPECT_EQ(a.sleep_ns, 2'000'000);
  EXPECT_TRUE(a.exits);
  EXPECT_EQ(a.behavior.burst_instructions, 2'000'000u);  // 1e6 ns * 2 i/ns
  EXPECT_EQ(a.behavior.sleep_mean_ns, 2'000'000);
  EXPECT_EQ(a.behavior.total_instructions, 4'000'000u);  // 2e6 ns * 2 i/ns
  EXPECT_DOUBLE_EQ(a.behavior.sleep_jitter, 0.0);
  EXPECT_TRUE(a.behavior.interactive());

  const ReplayTask& b = sched.tasks[1];
  EXPECT_EQ(b.name, "b");
  EXPECT_EQ(b.spawn_at, microseconds(100));
  EXPECT_EQ(b.busy_ns, 2'900'000);
  EXPECT_EQ(b.behavior.burst_instructions, 2'900'000u);  // 1.45e6 ns * 2
  EXPECT_EQ(b.behavior.sleep_mean_ns, 2'000'000);
  EXPECT_EQ(b.behavior.total_instructions, 0u);  // runs forever
  EXPECT_FALSE(b.exits);
}

TEST(SchedReplay, TaskWithoutCompletedCycleCompilesCpuBound) {
  std::ostringstream os;
  os << replay_csv_header() << "\n"
     << "spawn,0.000,hog,builtin:canneal\n"
     << "sleep,9000.000,hog,\n";  // sleeps but never wakes again
  std::istringstream in(os.str());
  const ReplaySchedule sched = compile_replay_schedule(parse_replay_trace(in));
  ASSERT_EQ(sched.tasks.size(), 1u);
  EXPECT_EQ(sched.tasks[0].wakes, 0u);
  EXPECT_EQ(sched.tasks[0].behavior.burst_instructions, 0u);
  EXPECT_FALSE(sched.tasks[0].behavior.interactive());
}

TEST(SchedReplay, RejectsMalformedInput) {
  const auto reject = [](const std::string& body) {
    std::istringstream in(body);
    EXPECT_THROW(parse_replay_trace(in), std::runtime_error) << body;
  };
  reject("");                                             // empty
  reject("foo,bar\nspawn,0.000,a,builtin:canneal\n");     // bad header
  const std::string h = replay_csv_header() + "\n";
  reject(h);                                              // no spawn
  reject(h + "hop,0.000,a,builtin:canneal\n");            // unknown event
  reject(h + "spawn,0.000,a\n");                          // missing column
  reject(h + "spawn,0.000,,builtin:canneal\n");           // empty task
  reject(h + "spawn,0.000,a,\n");                         // spawn without ref
  reject(h + "wake,0.000,a,\n");                          // event before spawn
  reject(h + "spawn,0.000,a,builtin:canneal\n"
             "spawn,0.000,a,builtin:canneal\n");          // duplicate spawn
  reject(h + "spawn,1000.000,a,builtin:canneal\n"
             "sleep,500.000,a,\n");                       // global order
  reject(h + "spawn,0.000,a,builtin:canneal\n"
             "sleep,0.000,a,\n");                         // per-task strict
  reject(h + "spawn,0.000,a,builtin:canneal\n"
             "wake,1.000,a,\n");                          // wake while awake
  reject(h + "spawn,0.000,a,builtin:canneal\n"
             "sleep,1.000,a,\n"
             "sleep,2.000,a,\n");                         // sleep while asleep
  reject(h + "spawn,0.000,a,builtin:canneal\n"
             "exit,1.000,a,\n"
             "wake,2.000,a,\n");                          // event after exit
  reject(h + "spawn,0.000,a,builtin:canneal\n"
             "sleep,1.000,a,ref\n");                      // ref on non-spawn
  reject(h + "spawn,abc,a,builtin:canneal\n");            // non-numeric time
  reject(h + "spawn,-1.000,a,builtin:canneal\n");         // negative time
  reject(h + "spawn,1e999,a,builtin:canneal\n");          // over-range time
  reject(h + "spawn,2000000000.000,a,builtin:canneal\n"); // > 1e9 us
}

TEST(SchedReplay, ErrorsCarryLineNumbers) {
  std::istringstream in(replay_csv_header() + "\n" +
                        "spawn,0.000,a,builtin:canneal\n" +
                        "sleep,1.000,a,\n" + "sleep,2.000,a,\n");
  try {
    parse_replay_trace(in);
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

TEST(SchedReplay, MissingFileThrows) {
  EXPECT_THROW(load_replay_trace_file("/no/such/replay.csv"),
               std::runtime_error);
}

TEST(SchedReplay, CompileRejectsBadRefsAndOptions) {
  std::istringstream in(replay_csv_header() + "\n" +
                        "spawn,0.000,a,builtin:not_a_benchmark\n");
  const ReplayTrace t = parse_replay_trace(in);
  EXPECT_THROW(compile_replay_schedule(t), std::runtime_error);

  std::istringstream in2(replay_csv_header() + "\n" +
                         "spawn,0.000,a,/no/such/phases.csv\n");
  const ReplayTrace t2 = parse_replay_trace(in2);
  EXPECT_THROW(compile_replay_schedule(t2), std::runtime_error);

  std::istringstream in3(sample_trace_csv());
  const ReplayTrace t3 = parse_replay_trace(in3);
  for (const double bad : {0.0, -1.0, 1e9}) {
    ReplayCompileOptions opts;
    opts.ips_hint = bad;
    EXPECT_THROW(compile_replay_schedule(t3, opts), std::runtime_error) << bad;
  }
}

TEST(SchedReplay, ClassHashIsStableAndInRange) {
  // Pinned values: part of the fleet determinism contract (changing the
  // hash silently re-classes every replayed fleet job).
  EXPECT_EQ(replay_class_of("bg/canneal", 8), replay_class_of("bg/canneal", 8));
  std::set<int> seen;
  for (const char* name : {"ui0", "ui1", "ui2", "bg/canneal", "worker/a",
                           "worker/b", "x", "yy"}) {
    const int c = replay_class_of(name, 8);
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 8);
    seen.insert(c);
  }
  EXPECT_GT(seen.size(), 2u) << "hash collapses every name to one class";
  EXPECT_EQ(replay_class_of("anything", 1), 0);
  EXPECT_THROW(replay_class_of("x", 0), std::invalid_argument);
}

}  // namespace
}  // namespace sb::workload
