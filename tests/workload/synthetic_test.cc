#include "workload/synthetic.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sb::workload {
namespace {

TEST(SyntheticBuilder, DefaultsProduceValidBenchmark) {
  const Benchmark b = SyntheticBuilder("probe").build();
  EXPECT_EQ(b.name, "probe");
  ASSERT_EQ(b.phases.size(), 1u);
  EXPECT_NO_THROW(b.phases[0].profile.validate());
  EXPECT_EQ(b.burst_instructions, 0u);
}

TEST(SyntheticBuilder, SettersReachTheProfile) {
  const Benchmark b = SyntheticBuilder("p")
                          .ilp(3.5)
                          .memory_share(0.4)
                          .branch_share(0.1)
                          .mispredict_rate(0.07)
                          .footprint_kb(2048)
                          .instruction_footprint_kb(48)
                          .locality(0.8)
                          .miss_rates(0.004, 0.12)
                          .memory_level_parallelism(2.5)
                          .l2_miss_ratio(0.6)
                          .activity(1.1)
                          .phase_instructions(7'000'000)
                          .build();
  const auto& p = b.phases[0].profile;
  EXPECT_DOUBLE_EQ(p.ilp, 3.5);
  EXPECT_DOUBLE_EQ(p.mem_share, 0.4);
  EXPECT_DOUBLE_EQ(p.branch_share, 0.1);
  EXPECT_DOUBLE_EQ(p.mispredict_rate, 0.07);
  EXPECT_DOUBLE_EQ(p.footprint_d_kb, 2048);
  EXPECT_DOUBLE_EQ(p.footprint_i_kb, 48);
  EXPECT_DOUBLE_EQ(p.locality_alpha, 0.8);
  EXPECT_DOUBLE_EQ(p.mr_l1d_ref, 0.12);
  EXPECT_DOUBLE_EQ(p.mlp, 2.5);
  EXPECT_DOUBLE_EQ(p.l2_miss_ratio, 0.6);
  EXPECT_DOUBLE_EQ(p.activity, 1.1);
  EXPECT_EQ(b.phases[0].instructions, 7'000'000u);
}

TEST(SyntheticBuilder, InteractivityAndLifetime) {
  const Benchmark b = SyntheticBuilder("io")
                          .interactive(1'000'000, milliseconds(4))
                          .total_instructions(50'000'000)
                          .build();
  EXPECT_EQ(b.burst_instructions, 1'000'000u);
  EXPECT_EQ(b.sleep_mean_ns, milliseconds(4));
  EXPECT_EQ(b.per_thread_instructions, 50'000'000u);
  Rng rng(1);
  const auto threads = b.spawn(2, rng);
  EXPECT_TRUE(threads[0].interactive());
  EXPECT_EQ(threads[0].total_instructions, 50'000'000u);
}

TEST(SyntheticBuilder, SecondPhaseScales) {
  const Benchmark b = SyntheticBuilder("phased")
                          .ilp(2.0)
                          .footprint_kb(100)
                          .second_phase(0.5, 8.0, 9'000'000)
                          .build();
  ASSERT_EQ(b.phases.size(), 2u);
  EXPECT_DOUBLE_EQ(b.phases[1].profile.ilp, 1.0);
  EXPECT_DOUBLE_EQ(b.phases[1].profile.footprint_d_kb, 800);
  EXPECT_EQ(b.phases[1].instructions, 9'000'000u);
}

TEST(SyntheticBuilder, OutOfRangeRejectedAtBuild) {
  EXPECT_THROW(SyntheticBuilder("bad").ilp(99).build(), std::invalid_argument);
  EXPECT_THROW(SyntheticBuilder("bad").memory_share(0.95).build(),
               std::invalid_argument);
  EXPECT_THROW(SyntheticBuilder("bad").phase_instructions(0).build(),
               std::invalid_argument);
  EXPECT_THROW(SyntheticBuilder("bad").second_phase(1, 1, 0).build(),
               std::invalid_argument);
}

TEST(SyntheticBuilder, SpawnShortcut) {
  Rng rng(2);
  const auto threads = SyntheticBuilder("s").spawn(3, rng);
  EXPECT_EQ(threads.size(), 3u);
}

}  // namespace
}  // namespace sb::workload
