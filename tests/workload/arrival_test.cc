#include "workload/arrival.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace sb::workload {
namespace {

TEST(ZipfGenerator, ProbabilitiesSumToOneAndDecrease) {
  ZipfGenerator z(8, 0.99, 42);
  double sum = 0;
  for (int r = 0; r < z.size(); ++r) {
    sum += z.probability(r);
    if (r > 0) EXPECT_GE(z.probability(r - 1), z.probability(r));
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfGenerator, ThetaZeroIsUniform) {
  ZipfGenerator z(5, 0.0, 42);
  for (int r = 0; r < 5; ++r) EXPECT_NEAR(z.probability(r), 0.2, 1e-12);
}

TEST(ZipfGenerator, DeterministicForSeed) {
  ZipfGenerator a(16, 1.2, 7), b(16, 1.2, 7), c(16, 1.2, 8);
  bool any_diff = false;
  for (int i = 0; i < 256; ++i) {
    const int va = a.next();
    EXPECT_EQ(va, b.next());
    any_diff = any_diff || va != c.next();
  }
  EXPECT_TRUE(any_diff);
}

// Chi-squared goodness-of-fit of the sampler against its own analytic
// probability() table. With df = 7 the 99.9th percentile of chi^2 is
// ~24.3; a healthy sampler at n = 40000 sits far below it, a biased one
// (e.g. an off-by-one in the CDF walk) lands in the hundreds.
TEST(ZipfGenerator, ChiSquaredMatchesAnalyticDistribution) {
  constexpr int kClasses = 8;
  constexpr int kDraws = 40'000;
  ZipfGenerator z(kClasses, 0.99, 20260808);
  std::vector<int> counts(kClasses, 0);
  for (int i = 0; i < kDraws; ++i) {
    const int r = z.next();
    ASSERT_GE(r, 0);
    ASSERT_LT(r, kClasses);
    ++counts[r];
  }
  double chi2 = 0;
  for (int r = 0; r < kClasses; ++r) {
    const double expected = kDraws * z.probability(r);
    ASSERT_GT(expected, 5.0);  // chi^2 validity precondition
    chi2 += (counts[r] - expected) * (counts[r] - expected) / expected;
  }
  EXPECT_LT(chi2, 24.32);  // chi^2_{0.999, df=7}
}

TEST(ZipfGenerator, RejectsBadParameters) {
  EXPECT_THROW(ZipfGenerator(0, 0.99, 1), std::invalid_argument);
  EXPECT_THROW(ZipfGenerator(4, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(ZipfGenerator(4, 16.5, 1), std::invalid_argument);
}

ArrivalProcess::Config cfg_of(double rate, double burst = 4.0,
                              std::uint64_t seed = 1234) {
  ArrivalProcess::Config c;
  c.rate_hz = rate;
  c.burst_factor = burst;
  c.seed = seed;
  return c;
}

TEST(ArrivalProcess, StrictlyIncreasingTimesAndSequentialIds) {
  ArrivalProcess p(cfg_of(500.0));
  TimeNs prev = -1;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const JobArrival a = p.next();
    EXPECT_EQ(a.id, i);
    EXPECT_GT(a.at, prev);
    EXPECT_GE(a.job_class, 0);
    EXPECT_LT(a.job_class, 8);
    prev = a.at;
  }
}

TEST(ArrivalProcess, DeterministicForSeed) {
  ArrivalProcess a(cfg_of(300.0)), b(cfg_of(300.0));
  for (int i = 0; i < 1024; ++i) {
    const JobArrival ja = a.next(), jb = b.next();
    EXPECT_EQ(ja.at, jb.at);
    EXPECT_EQ(ja.job_class, jb.job_class);
  }
}

TEST(ArrivalProcess, LongRunRateMatchesConfig) {
  // Count arrivals inside a 40 s window; the MMPP is constructed so its
  // long-run mean equals rate_hz, so 40 s at 250 Hz is 10000 +- a few %.
  ArrivalProcess p(cfg_of(250.0));
  const TimeNs window = seconds(40);
  std::uint64_t n = 0;
  while (p.next().at < window) ++n;
  EXPECT_NEAR(static_cast<double>(n), 250.0 * 40, 250.0 * 40 * 0.05);
}

TEST(ArrivalProcess, BurstFactorConcentratesArrivals) {
  // Same seed, same mean rate: the bursty process must put more arrivals
  // into its densest 20 ms window than the flat (burst_factor = 1) one.
  auto max_window = [](double burst) {
    ArrivalProcess p(cfg_of(400.0, burst, 99));
    std::vector<TimeNs> at;
    for (;;) {
      const JobArrival a = p.next();
      if (a.at >= seconds(4)) break;
      at.push_back(a.at);
    }
    std::size_t lo = 0, best = 0;
    for (std::size_t hi = 0; hi < at.size(); ++hi) {
      while (at[hi] - at[lo] > milliseconds(20)) ++lo;
      best = std::max(best, hi - lo + 1);
    }
    return best;
  };
  EXPECT_GT(max_window(8.0), max_window(1.0));
}

TEST(ArrivalProcess, BurstingStateAlternates) {
  ArrivalProcess p(cfg_of(2000.0));
  bool saw_burst = false, saw_calm = false;
  for (int i = 0; i < 20'000 && !(saw_burst && saw_calm); ++i) {
    p.next();
    (p.bursting() ? saw_burst : saw_calm) = true;
  }
  EXPECT_TRUE(saw_burst);
  EXPECT_TRUE(saw_calm);
}

TEST(ArrivalProcess, ConfigValidateRejectsBadFields) {
  EXPECT_THROW(ArrivalProcess{cfg_of(0.0)}, std::invalid_argument);
  EXPECT_THROW(ArrivalProcess{cfg_of(2e7)}, std::invalid_argument);
  EXPECT_THROW(ArrivalProcess{cfg_of(100.0, 0.5)}, std::invalid_argument);
  auto c = cfg_of(100.0);
  c.num_classes = 0;
  EXPECT_THROW(ArrivalProcess{c}, std::invalid_argument);
  c = cfg_of(100.0);
  c.zipf_theta = 17.0;
  EXPECT_THROW(ArrivalProcess{c}, std::invalid_argument);
  c = cfg_of(100.0);
  c.burst_mean = 0;
  EXPECT_THROW(ArrivalProcess{c}, std::invalid_argument);
}

}  // namespace
}  // namespace sb::workload
