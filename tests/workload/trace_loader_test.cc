#include "workload/trace_loader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <typeinfo>

#include "workload/benchmarks.h"

namespace sb::workload {
namespace {

TEST(TraceLoader, RoundTripsEveryLibraryBenchmark) {
  for (const auto& name : BenchmarkLibrary::parsec_names()) {
    Rng rng(1);
    const auto original = BenchmarkLibrary::get(name).spawn(1, rng)[0];
    std::stringstream buf;
    save_thread_trace(buf, original);
    const auto restored = load_thread_trace(buf, original.name);
    ASSERT_EQ(restored.phases.size(), original.phases.size()) << name;
    for (std::size_t i = 0; i < original.phases.size(); ++i) {
      EXPECT_EQ(restored.phases[i].instructions,
                original.phases[i].instructions);
      EXPECT_DOUBLE_EQ(restored.phases[i].profile.ilp,
                       original.phases[i].profile.ilp);
      EXPECT_DOUBLE_EQ(restored.phases[i].profile.mr_l1d_ref,
                       original.phases[i].profile.mr_l1d_ref);
      EXPECT_DOUBLE_EQ(restored.phases[i].profile.mlp,
                       original.phases[i].profile.mlp);
    }
  }
}

TEST(TraceLoader, FileRoundTrip) {
  const std::string path = "trace_loader_test_tmp.csv";
  Rng rng(2);
  const auto original = BenchmarkLibrary::get("canneal").spawn(1, rng)[0];
  save_thread_trace_file(path, original);
  const auto restored = load_thread_trace_file(path, "canneal/0");
  EXPECT_EQ(restored.phases.size(), original.phases.size());
  std::remove(path.c_str());
}

TEST(TraceLoader, HandCraftedTrace) {
  std::stringstream buf;
  buf << trace_csv_header() << "\n"
      << "10000000,2.5,0.3,0.12,0.04,24,512,1.1,0.006,0.07,0.4,1.8,1.0\n"
      << "5000000,3.5,0.15,0.08,0.01,12,64,1.4,0.002,0.02,0.2,2.2,1.1\n";
  const auto tb = load_thread_trace(buf, "custom");
  ASSERT_EQ(tb.phases.size(), 2u);
  EXPECT_EQ(tb.phases[0].instructions, 10'000'000u);
  EXPECT_DOUBLE_EQ(tb.phases[1].profile.ilp, 3.5);
  EXPECT_EQ(tb.phases[0].profile.name, "custom.phase0");
  EXPECT_NO_THROW(tb.validate());
}

TEST(TraceLoader, RejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_THROW(load_thread_trace(empty, "x"), std::runtime_error);

  std::stringstream bad_header("foo,bar\n1,2\n");
  EXPECT_THROW(load_thread_trace(bad_header, "x"), std::runtime_error);

  std::stringstream short_row;
  short_row << trace_csv_header() << "\n1000,2.5\n";
  EXPECT_THROW(load_thread_trace(short_row, "x"), std::runtime_error);

  std::stringstream non_numeric;
  non_numeric << trace_csv_header()
              << "\n10000000,fast,0.3,0.12,0.04,24,512,1.1,0.006,0.07,0.4,1.8,"
                 "1.0\n";
  EXPECT_THROW(load_thread_trace(non_numeric, "x"), std::runtime_error);

  std::stringstream invalid_profile;
  invalid_profile << trace_csv_header()
                  << "\n10000000,99,0.3,0.12,0.04,24,512,1.1,0.006,0.07,0.4,"
                     "1.8,1.0\n";
  EXPECT_THROW(load_thread_trace(invalid_profile, "x"), std::runtime_error);

  std::stringstream zero_insts;
  zero_insts << trace_csv_header()
             << "\n0,2.5,0.3,0.12,0.04,24,512,1.1,0.006,0.07,0.4,1.8,1.0\n";
  EXPECT_THROW(load_thread_trace(zero_insts, "x"), std::runtime_error);

  std::stringstream header_only;
  header_only << trace_csv_header() << "\n";
  EXPECT_THROW(load_thread_trace(header_only, "x"), std::runtime_error);
}

TEST(TraceLoader, ErrorsCarryLineNumbers) {
  std::stringstream bad;
  bad << trace_csv_header() << "\n"
      << "10000000,2.5,0.3,0.12,0.04,24,512,1.1,0.006,0.07,0.4,1.8,1.0\n"
      << "10000000,2.5,0.3\n";
  try {
    load_thread_trace(bad, "x");
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(TraceLoader, OverRangeNumericsAreRuntimeErrorNotOutOfRange) {
  // Regression for the stod/stoi leak class: over-range numerics used to
  // escape as std::out_of_range instead of the documented runtime_error
  // (with a line number). Same bug family fault_plan_fuzz_test.cc caught.
  const std::string tail = ",2.5,0.3,0.12,0.04,24,512,1.1,0.006,0.07,0.4,1.8,1.0";
  for (const char* insts : {"1e999", "9e18", "1e309", "-5", "nan", "inf",
                            "99999999999999999999"}) {
    std::stringstream buf;
    buf << trace_csv_header() << "\n" << insts << tail << "\n";
    try {
      load_thread_trace(buf, "x");
      FAIL() << "accepted instructions=" << insts;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
          << insts << " -> " << e.what();
    } catch (const std::exception& e) {
      FAIL() << "instructions=" << insts << " leaked " << typeid(e).name()
             << ": " << e.what();
    }
  }
  // Over-range in a double column, too.
  std::stringstream buf;
  buf << trace_csv_header()
      << "\n10000000,1e999,0.3,0.12,0.04,24,512,1.1,0.006,0.07,0.4,1.8,1.0\n";
  EXPECT_THROW(load_thread_trace(buf, "x"), std::runtime_error);
}

TEST(TraceLoader, MissingFileThrows) {
  EXPECT_THROW(load_thread_trace_file("/no/such/trace.csv", "x"),
               std::runtime_error);
}

}  // namespace
}  // namespace sb::workload
