// Grammar fuzz for parse_replay_trace: ~10k seeded, deterministic mutations
// of valid traces plus raw garbage. The contract under test: the parser
// either returns a trace or throws std::runtime_error with a line number —
// never any other exception type, never UB (the suite also runs under
// ASan/UBSan in CI). Same harness shape as fault_plan_fuzz_test.cc, which
// caught the std::out_of_range leak from std::stod on over-range numerics.
#include "workload/sched_replay.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <typeinfo>
#include <vector>

namespace sb::workload {
namespace {

/// SplitMix64: deterministic mutation stream, independent of libc rand.
class Mutator {
 public:
  explicit Mutator(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  char random_char() {
    // Biased toward grammar-relevant bytes so mutations stay interesting.
    static const char kAlphabet[] =
        "0123456789.,-+eE \t\nspawnwakesleepexit"
        "event,t_us,task,refbuiltin:cannealIMB_MTHI\0\x7f";
    return kAlphabet[below(sizeof(kAlphabet) - 1)];
  }

  std::string mutate(std::string s) {
    const int edits = 1 + static_cast<int>(below(4));
    for (int e = 0; e < edits; ++e) {
      switch (below(5)) {
        case 0:  // flip one byte
          if (!s.empty()) s[below(s.size())] = random_char();
          break;
        case 1:  // insert
          s.insert(s.begin() + static_cast<std::ptrdiff_t>(
                                   below(s.size() + 1)),
                   random_char());
          break;
        case 2:  // delete
          if (!s.empty()) s.erase(below(s.size()), 1);
          break;
        case 3:  // truncate
          if (!s.empty()) s.resize(below(s.size()));
          break;
        case 4:  // duplicate a slice onto the end
          if (!s.empty()) {
            const std::size_t at = below(s.size());
            s += s.substr(at, below(s.size() - at) + 1);
          }
          break;
      }
    }
    return s;
  }

 private:
  std::uint64_t state_;
};

const std::vector<std::string>& corpus() {
  static const std::vector<std::string> kCorpus = {
      "event,t_us,task,ref\n"
      "spawn,0.000,a,builtin:canneal\n",

      "event,t_us,task,ref\n"
      "spawn,0.000,a,builtin:canneal\n"
      "sleep,1000.000,a,\n"
      "wake,3000.000,a,\n"
      "sleep,4000.000,a,\n"
      "exit,5000.000,a,\n",

      "event,t_us,task,ref\n"
      "spawn,0.000,bg,builtin:canneal\n"
      "spawn,100.000,ui,builtin:IMB_MTHI\n"
      "sleep,500.500,ui,\n"
      "wake,1500.250,ui,\n",

      "event,t_us,task,ref\n"
      "spawn,0.000,a,builtin:IMB_MTHI\n"
      "spawn,0.000,b,builtin:canneal\n"
      "sleep,10.125,a,\n"
      "wake,20.750,a,\n"
      "exit,30.000,b,\n",

      "",
  };
  return kCorpus;
}

bool all_refs_builtin(const ReplayTrace& trace) {
  for (const ReplayEvent& ev : trace.events) {
    if (ev.kind == ReplayEvent::Kind::Spawn &&
        !std::string_view(ev.ref).starts_with("builtin:")) {
      return false;
    }
  }
  return true;
}

/// The parser must return or throw std::runtime_error; nothing else. On
/// success, save→reparse must reproduce the trace exactly, and — when all
/// refs resolve to builtins so no filesystem access happens — the compiler
/// must also return or throw std::runtime_error.
void expect_contract(const std::string& input) {
  try {
    std::istringstream in(input);
    const ReplayTrace trace = parse_replay_trace(in);
    std::ostringstream saved;
    save_replay_trace(saved, trace);
    std::istringstream in2(saved.str());
    const ReplayTrace again = parse_replay_trace(in2);
    EXPECT_EQ(again, trace) << "unstable round-trip for input '" << input
                            << "'";
    if (all_refs_builtin(trace)) {
      try {
        const ReplaySchedule sched = compile_replay_schedule(trace);
        EXPECT_EQ(sched.tasks.size(), trace.num_tasks());
      } catch (const std::runtime_error&) {
        // Documented rejection path (e.g. unknown builtin benchmark).
      }
    }
  } catch (const std::runtime_error&) {
    // Documented rejection path.
  } catch (const std::exception& e) {
    FAIL() << "parse_replay_trace('" << input << "') leaked "
           << typeid(e).name() << ": " << e.what();
  }
}

TEST(SchedReplayFuzz, TenThousandSeededMutations) {
  Mutator m(0x5eedcafeULL);
  int parsed = 0, rejected = 0;
  for (int i = 0; i < 10'000; ++i) {
    const std::string& base = corpus()[m.below(corpus().size())];
    const std::string input =
        m.below(10) == 0
            ? std::string(m.below(32), static_cast<char>(m.next() & 0xff))
            : m.mutate(base);
    try {
      std::istringstream in(input);
      (void)parse_replay_trace(in);
      ++parsed;
    } catch (const std::runtime_error&) {
      ++rejected;
    }
    expect_contract(input);
  }
  // The mutation stream must exercise both sides of the grammar.
  EXPECT_GT(parsed, 100) << "mutations never produced a valid trace";
  EXPECT_GT(rejected, 1000) << "mutations never produced an invalid trace";
}

TEST(SchedReplayFuzz, OverRangeNumericsAreRuntimeErrorNotOutOfRange) {
  // std::stod throws std::out_of_range on these; the parser must map that
  // onto its documented std::runtime_error contract.
  const std::string h = replay_csv_header() + "\n";
  for (const char* t :
       {"1e999", "1e-999", "9e307", "1e309", "99999999999999999999",
        "184467440737095516160"}) {
    std::istringstream in(h + "spawn," + t + ",a,builtin:canneal\n");
    EXPECT_THROW((void)parse_replay_trace(in), std::runtime_error) << t;
  }
}

TEST(SchedReplayFuzz, ValidCorpusStillParses) {
  for (const std::string& input : corpus()) {
    if (input.empty()) continue;  // empty input is the documented rejection
    std::istringstream in(input);
    EXPECT_NO_THROW((void)parse_replay_trace(in)) << input;
  }
}

}  // namespace
}  // namespace sb::workload
