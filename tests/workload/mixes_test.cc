#include "workload/mixes.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sb::workload {
namespace {

TEST(Mixes, Table3Membership) {
  EXPECT_EQ(mix_members(1),
            (std::vector<std::string>{"x264_H_crew", "x264_H_bow"}));
  EXPECT_EQ(mix_members(2),
            (std::vector<std::string>{"x264_L_crew", "x264_L_bow"}));
  EXPECT_EQ(mix_members(3),
            (std::vector<std::string>{"x264_L_crew", "x264_H_bow"}));
  EXPECT_EQ(mix_members(4),
            (std::vector<std::string>{"x264_H_crew", "x264_L_bow"}));
  EXPECT_EQ(mix_members(5),
            (std::vector<std::string>{"bodytrack", "x264_H_crew"}));
  EXPECT_EQ(mix_members(6), (std::vector<std::string>{
                                "bodytrack", "x264_H_crew", "x264_L_bow"}));
}

TEST(Mixes, CountAndBounds) {
  EXPECT_EQ(num_mixes(), 6);
  EXPECT_THROW(mix_members(0), std::out_of_range);
  EXPECT_THROW(mix_members(7), std::out_of_range);
}

TEST(Mixes, SpawnProducesThreadsPerMember) {
  Rng rng(1);
  const auto threads = spawn_mix(6, 4, rng);
  EXPECT_EQ(threads.size(), 12u);  // 3 members × 4 threads
  for (const auto& t : threads) EXPECT_NO_THROW(t.validate());
}

TEST(Mixes, AllMembersResolvable) {
  Rng rng(2);
  for (int id = 1; id <= num_mixes(); ++id) {
    EXPECT_NO_THROW(spawn_mix(id, 2, rng)) << "mix " << id;
  }
}

}  // namespace
}  // namespace sb::workload
