#include "workload/benchmarks.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace sb::workload {
namespace {

TEST(BenchmarkLibrary, AllParsecNamesResolve) {
  for (const auto& name : BenchmarkLibrary::parsec_names()) {
    const Benchmark b = BenchmarkLibrary::get(name);
    EXPECT_EQ(b.name, name);
    EXPECT_FALSE(b.phases.empty());
    for (const auto& ph : b.phases) EXPECT_NO_THROW(ph.profile.validate());
  }
}

TEST(BenchmarkLibrary, AllX264VariantsResolve) {
  for (const auto& name : BenchmarkLibrary::x264_names()) {
    EXPECT_EQ(BenchmarkLibrary::get(name).name, name);
  }
}

TEST(BenchmarkLibrary, ImbGridHasNineConfigs) {
  const auto names = BenchmarkLibrary::imb_names();
  EXPECT_EQ(names.size(), 9u);
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), 9u);
  for (const auto& n : names) {
    const Benchmark b = BenchmarkLibrary::get(n);
    EXPECT_TRUE(b.burst_instructions > 0);
    EXPECT_TRUE(b.sleep_mean_ns > 0);
  }
}

TEST(BenchmarkLibrary, UnknownNameThrows) {
  EXPECT_THROW(BenchmarkLibrary::get("nope"), std::out_of_range);
  EXPECT_THROW(BenchmarkLibrary::get("IMB_XTXI"), std::out_of_range);
}

TEST(BenchmarkLibrary, X264VariantsDifferByRateAndInput) {
  const auto hc = BenchmarkLibrary::get("x264_H_crew");
  const auto hb = BenchmarkLibrary::get("x264_H_bow");
  const auto lc = BenchmarkLibrary::get("x264_L_crew");
  // crew (high motion) is more memory- and branch-intensive than bowing.
  EXPECT_GT(hc.phases[0].profile.mem_share, hb.phases[0].profile.mem_share);
  EXPECT_GT(hc.phases[0].profile.mispredict_rate,
            hb.phases[0].profile.mispredict_rate);
  // L rate is interactive (waits between frames), H is not.
  EXPECT_EQ(hc.sleep_mean_ns, 0);
  EXPECT_GT(lc.sleep_mean_ns, 0);
  EXPECT_GT(hc.phases[0].instructions, lc.phases[0].instructions);
}

TEST(BenchmarkLibrary, ImbThroughputKnobScalesLoad) {
  const auto ht = BenchmarkLibrary::imb(Level::High, Level::Medium);
  const auto lt = BenchmarkLibrary::imb(Level::Low, Level::Medium);
  EXPECT_GT(ht.burst_instructions, lt.burst_instructions);
  EXPECT_GT(ht.phases[0].profile.ilp, lt.phases[0].profile.ilp);
}

TEST(BenchmarkLibrary, ImbInteractivityKnobScalesSleep) {
  const auto hi = BenchmarkLibrary::imb(Level::Medium, Level::High);
  const auto li = BenchmarkLibrary::imb(Level::Medium, Level::Low);
  EXPECT_GT(hi.sleep_mean_ns, li.sleep_mean_ns);
}

TEST(Benchmark, SpawnCountAndNames) {
  Rng rng(1);
  const auto threads = BenchmarkLibrary::get("ferret").spawn(4, rng);
  ASSERT_EQ(threads.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(threads[static_cast<std::size_t>(i)].name,
              "ferret/" + std::to_string(i));
    EXPECT_NO_THROW(threads[static_cast<std::size_t>(i)].validate());
  }
}

TEST(Benchmark, SpawnIsDeterministicPerSeed) {
  Rng a(9), b(9), c(10);
  const auto ta = BenchmarkLibrary::get("canneal").spawn(3, a);
  const auto tb = BenchmarkLibrary::get("canneal").spawn(3, b);
  const auto tc = BenchmarkLibrary::get("canneal").spawn(3, c);
  EXPECT_DOUBLE_EQ(ta[0].phases[0].profile.ilp, tb[0].phases[0].profile.ilp);
  EXPECT_NE(ta[0].phases[0].profile.ilp, tc[0].phases[0].profile.ilp);
}

TEST(Benchmark, SiblingsAreJitteredAndDesynchronized) {
  Rng rng(2);
  const auto threads = BenchmarkLibrary::get("bodytrack").spawn(2, rng);
  // Jitter differentiates siblings...
  EXPECT_NE(threads[0].phases[0].profile.ilp,
            threads[1].phases[0].profile.ilp);
  // ...and phase rotation desynchronizes them.
  EXPECT_NE(threads[0].phases[0].profile.name,
            threads[1].phases[0].profile.name);
}

TEST(Benchmark, SpawnRejectsBadCount) {
  Rng rng(1);
  EXPECT_THROW(BenchmarkLibrary::get("vips").spawn(0, rng),
               std::invalid_argument);
}

TEST(Levels, LetterRoundTrip) {
  for (Level l : {Level::Low, Level::Medium, Level::High}) {
    EXPECT_EQ(level_from_letter(level_letter(l)), l);
  }
  EXPECT_THROW(level_from_letter('Z'), std::out_of_range);
}

TEST(BenchmarkLibrary, CharacterizationDiversityAcrossSuite) {
  // The suite must span compute-bound to memory-bound for the paper's
  // thread-to-core matching to be exercised.
  double min_ilp = 99, max_ilp = 0, min_fp = 1e12, max_fp = 0;
  for (const auto& name : BenchmarkLibrary::parsec_names()) {
    for (const auto& ph : BenchmarkLibrary::get(name).phases) {
      min_ilp = std::min(min_ilp, ph.profile.ilp);
      max_ilp = std::max(max_ilp, ph.profile.ilp);
      min_fp = std::min(min_fp, ph.profile.footprint_d_kb);
      max_fp = std::max(max_fp, ph.profile.footprint_d_kb);
    }
  }
  EXPECT_LT(min_ilp, 1.5);
  EXPECT_GT(max_ilp, 3.0);
  EXPECT_LT(min_fp, 64.0);
  EXPECT_GT(max_fp, 2048.0);
}

}  // namespace
}  // namespace sb::workload
