#include "workload/profile.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.h"

namespace sb::workload {
namespace {

class TestJitter final : public JitterSource {
 public:
  explicit TestJitter(Rng rng) : rng_(rng) {}
  double gaussian() override { return rng_.gaussian(); }

 private:
  Rng rng_;
};

WorkloadProfile valid_profile() {
  WorkloadProfile p;
  p.name = "test";
  return p;  // defaults are in-range
}

TEST(WorkloadProfile, DefaultsValidate) {
  EXPECT_NO_THROW(valid_profile().validate());
}

TEST(WorkloadProfile, RejectsOutOfRangeIlp) {
  auto p = valid_profile();
  p.ilp = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.ilp = 100;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(WorkloadProfile, RejectsMixOverflow) {
  auto p = valid_profile();
  p.mem_share = 0.7;
  p.branch_share = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(WorkloadProfile, RejectsBadRates) {
  auto p = valid_profile();
  p.mr_l1d_ref = 0.9;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = valid_profile();
  p.mlp = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = valid_profile();
  p.activity = 3.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(WorkloadProfile, JitterStaysValidUnderHeavyNoise) {
  TestJitter j{Rng(3)};
  const auto base = valid_profile();
  for (int i = 0; i < 200; ++i) {
    const auto p = base.jittered(0.3, j);
    EXPECT_NO_THROW(p.validate());
    EXPECT_LE(p.mem_share + p.branch_share, 1.0);
  }
}

TEST(WorkloadProfile, JitterZeroSigmaIsIdentityish) {
  TestJitter j{Rng(4)};
  const auto base = valid_profile();
  const auto p = base.jittered(0.0, j);
  EXPECT_DOUBLE_EQ(p.ilp, base.ilp);
  EXPECT_DOUBLE_EQ(p.mem_share, base.mem_share);
}

TEST(WorkloadProfile, JitterActuallyPerturbs) {
  TestJitter j{Rng(5)};
  const auto base = valid_profile();
  const auto p = base.jittered(0.1, j);
  EXPECT_NE(p.ilp, base.ilp);
}

TEST(ThreadBehavior, RequiresPhases) {
  ThreadBehavior tb;
  EXPECT_THROW(tb.validate(), std::invalid_argument);
}

TEST(ThreadBehavior, RejectsEmptyPhase) {
  ThreadBehavior tb;
  tb.phases.push_back(Phase{valid_profile(), 0});
  EXPECT_THROW(tb.validate(), std::invalid_argument);
}

TEST(ThreadBehavior, InteractiveNeedsSleep) {
  ThreadBehavior tb;
  tb.phases.push_back(Phase{valid_profile(), 1000});
  tb.burst_instructions = 100;
  tb.sleep_mean_ns = 0;
  EXPECT_THROW(tb.validate(), std::invalid_argument);
  tb.sleep_mean_ns = milliseconds(1);
  EXPECT_NO_THROW(tb.validate());
  EXPECT_TRUE(tb.interactive());
}

TEST(ThreadBehavior, NonInteractiveByDefault) {
  ThreadBehavior tb;
  tb.phases.push_back(Phase{valid_profile(), 1000});
  EXPECT_FALSE(tb.interactive());
  EXPECT_NO_THROW(tb.validate());
}

TEST(ThreadBehavior, SleepJitterRange) {
  ThreadBehavior tb;
  tb.phases.push_back(Phase{valid_profile(), 1000});
  tb.sleep_jitter = 1.5;
  EXPECT_THROW(tb.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace sb::workload
