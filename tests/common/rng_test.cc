#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace sb {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  std::uint64_t x = 0;
  for (int i = 0; i < 10; ++i) x |= r.next_u64();
  EXPECT_NE(x, 0u);
}

TEST(Rng, RandiRangeHalfOpen) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.randi(-5, 12);
    EXPECT_GE(v, -5);
    EXPECT_LT(v, 12);
  }
}

TEST(Rng, RandiCoversAllValues) {
  Rng r(11);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) ++seen[static_cast<std::size_t>(r.randi(0, 8))];
  for (int c : seen) EXPECT_GT(c, 700);  // ~1000 expected each
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng r(23);
  const int n = 50000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double g = r.gaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, GaussianScaled) {
  Rng r(29);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(31);
  Rng child = a.split();
  // Parent and child should not track each other.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, RandiFullWordIsUniformishInHighBit) {
  Rng r(37);
  int high = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.randi() & 0x80000000u) ++high;
  }
  EXPECT_NEAR(static_cast<double>(high) / n, 0.5, 0.02);
}

TEST(FastMod, ModMatchesHardwareForRandomOperands) {
  // mod is exact for the full 64-bit numerator range.
  Rng r(101);
  for (int k = 0; k < 2000; ++k) {
    const std::uint64_t d = 1 + r.next_u64() % 100000;
    const FastMod fm(d);
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t x = r.next_u64();
      ASSERT_EQ(fm.mod(x), x % d) << "x=" << x << " d=" << d;
    }
  }
}

TEST(FastMod, ModMatchesSaOptimizerDrawSemantics) {
  // The SA loop relies on randi(x, y) == x + next_u64() % (y - x); a
  // FastMod over the span must reproduce randi draw-for-draw.
  const std::int64_t slots = 128 * 256;
  const FastMod fm(static_cast<std::uint64_t>(slots));
  Rng a(42), b(42);
  for (int i = 0; i < 10000; ++i) {
    const auto expect = a.randi(-17, slots - 17);
    const auto got =
        -17 + static_cast<std::int64_t>(fm.mod(b.next_u64()));
    ASSERT_EQ(got, expect);
  }
}

TEST(FastMod, DivExactInDocumentedRange) {
  // div is exact for x < 2^32, d < 2^32 (the reciprocal's error term stays
  // below 1/d). Cover small divisors, powers of two, and d == 1.
  Rng r(102);
  for (std::uint64_t d : {1ull, 2ull, 3ull, 7ull, 8ull, 255ull, 256ull,
                          1000ull, 65536ull, 4294967295ull}) {
    const FastMod fm(d);
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t x = r.next_u64() & 0xffffffffULL;
      ASSERT_EQ(fm.div(x), x / d) << "x=" << x << " d=" << d;
    }
    // Boundaries of the documented range.
    ASSERT_EQ(fm.div(0), 0u);
    ASSERT_EQ(fm.div(0xffffffffULL), 0xffffffffULL / d);
  }
}

TEST(FastMod, DivModConsistency) {
  Rng r(103);
  for (int k = 0; k < 1000; ++k) {
    const std::uint64_t d = 1 + (r.next_u64() & 0xffff);
    const FastMod fm(d);
    const std::uint64_t x = r.next_u64() & 0xffffffffULL;
    ASSERT_EQ(fm.div(x) * d + fm.mod(x), x);
  }
}

}  // namespace
}  // namespace sb
