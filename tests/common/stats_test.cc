#include "common/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sb {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double v = 0.37 * i - 20;
    all.add(v);
    (i < 40 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Percentile, Basics) {
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 3}, 50), 3.0);
}

TEST(GeometricMean, Basics) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_EQ(geometric_mean({}), 0.0);
  EXPECT_THROW(geometric_mean({1.0, -1.0}), std::invalid_argument);
}

TEST(Histogram, Binning) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1);   // underflow
  h.add(0.0);  // bin 0
  h.add(5.5);  // bin 5
  h.add(9.99); // bin 9
  h.add(10.0); // overflow (half-open)
  h.add(42);   // overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace sb
