#include "common/fixed_point.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/fixed_math.h"

namespace sb {
namespace {

TEST(FixedPoint, ConstructionRoundTrips) {
  EXPECT_EQ(Fixed::from_int(0).to_int(), 0);
  EXPECT_EQ(Fixed::from_int(5).to_int(), 5);
  EXPECT_EQ(Fixed::from_int(-7).to_int(), -7);
  EXPECT_DOUBLE_EQ(Fixed::from_int(3).to_double(), 3.0);
  EXPECT_NEAR(Fixed::from_double(1.5).to_double(), 1.5, 1e-4);
  EXPECT_NEAR(Fixed::from_double(-2.25).to_double(), -2.25, 1e-4);
}

TEST(FixedPoint, RawAccess) {
  EXPECT_EQ(Fixed::from_int(1).raw(), Fixed::kOne);
  EXPECT_EQ(Fixed::from_raw(Fixed::kOne / 2).to_double(), 0.5);
}

TEST(FixedPoint, Arithmetic) {
  const Fixed a = Fixed::from_double(2.5);
  const Fixed b = Fixed::from_double(1.25);
  EXPECT_NEAR((a + b).to_double(), 3.75, 1e-4);
  EXPECT_NEAR((a - b).to_double(), 1.25, 1e-4);
  EXPECT_NEAR((a * b).to_double(), 3.125, 1e-3);
  EXPECT_NEAR((a / b).to_double(), 2.0, 1e-3);
  EXPECT_NEAR((-a).to_double(), -2.5, 1e-4);
}

TEST(FixedPoint, Comparisons) {
  EXPECT_LT(Fixed::from_double(1.0), Fixed::from_double(1.5));
  EXPECT_GT(Fixed::from_double(-1.0), Fixed::from_double(-1.5));
  EXPECT_EQ(Fixed::from_int(2), Fixed::from_int(2));
}

TEST(FixedPoint, AbsoluteValue) {
  EXPECT_EQ(fixed_abs(Fixed::from_double(-3.5)).to_double(), 3.5);
  EXPECT_EQ(fixed_abs(Fixed::from_double(3.5)).to_double(), 3.5);
  EXPECT_EQ(fixed_abs(kFixedZero).raw(), 0);
}

TEST(FixedPoint, SqrtBasics) {
  EXPECT_EQ(fixed_sqrt(kFixedZero).raw(), 0);
  EXPECT_EQ(fixed_sqrt(Fixed::from_int(-4)).raw(), 0);
  EXPECT_NEAR(fixed_sqrt(Fixed::from_int(4)).to_double(), 2.0, 1e-3);
  EXPECT_NEAR(fixed_sqrt(Fixed::from_int(2)).to_double(), std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(fixed_sqrt(Fixed::from_double(0.25)).to_double(), 0.5, 1e-3);
}

class FixedSqrtSweep : public ::testing::TestWithParam<double> {};

TEST_P(FixedSqrtSweep, MatchesDoubleSqrt) {
  const double x = GetParam();
  EXPECT_NEAR(fixed_sqrt(Fixed::from_double(x)).to_double(), std::sqrt(x),
              std::max(1e-3, 2e-4 * std::sqrt(x)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FixedSqrtSweep,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0, 2.0, 9.0, 100.0,
                                           1000.0, 20000.0));

TEST(FixedMath, ExpNegBasics) {
  EXPECT_EQ(fixed_exp_neg(kFixedZero).raw(), Fixed::kOne);
  EXPECT_EQ(fixed_exp_neg(Fixed::from_int(2)).raw(), Fixed::kOne)
      << "positive input clamps to exp(0)";
  // Deep negative underflows to exactly zero.
  EXPECT_EQ(fixed_exp_neg(Fixed::from_int(-20)).raw(), 0);
}

class FixedExpSweep : public ::testing::TestWithParam<double> {};

TEST_P(FixedExpSweep, MatchesLibm) {
  const double x = GetParam();
  const double got = fixed_exp_neg(Fixed::from_double(x)).to_double();
  // The LUT-based range reduction trades precision for speed (paper §4.3);
  // 1% relative or 2^-14 absolute is ample for the SA acceptance test.
  EXPECT_NEAR(got, std::exp(x), std::max(0.01 * std::exp(x), 1.0 / 16384.0));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FixedExpSweep,
                         ::testing::Values(-0.01, -0.1, -0.5, -1.0, -2.0, -3.0,
                                           -5.0, -8.0, -10.5));

TEST(FixedMath, ExpMonotoneNonIncreasing) {
  // Monotone up to the 1-2 ulp wobble inherent to the Q16.16 LUT products.
  constexpr double kTwoUlp = 2.0 / 65536.0;
  double prev = 2.0;
  for (double x = 0.0; x >= -12.0; x -= 0.125) {
    const double v = fixed_exp_neg(Fixed::from_double(x)).to_double();
    EXPECT_LE(v, prev + kTwoUlp) << "at x=" << x;
    prev = v;
  }
}

TEST(FixedMath, LogBasics) {
  EXPECT_NEAR(fixed_log(Fixed::from_int(1)).to_double(), 0.0, 1e-3);
  EXPECT_NEAR(fixed_log(Fixed::from_double(2.718281828)).to_double(), 1.0,
              5e-3);
  EXPECT_NEAR(fixed_log(Fixed::from_double(0.5)).to_double(), std::log(0.5),
              5e-3);
  EXPECT_LT(fixed_log(kFixedZero).raw(), 0) << "log(<=0) returns sentinel";
}

class FixedLogSweep : public ::testing::TestWithParam<double> {};

TEST_P(FixedLogSweep, MatchesLibm) {
  const double x = GetParam();
  EXPECT_NEAR(fixed_log(Fixed::from_double(x)).to_double(), std::log(x), 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FixedLogSweep,
                         ::testing::Values(0.01, 0.1, 0.9, 1.0, 1.1, 2.0, 10.0,
                                           100.0, 30000.0));

TEST(FixedMath, ExpLogRoundTrip) {
  for (double x : {0.2, 0.5, 0.9}) {
    const Fixed lx = fixed_log(Fixed::from_double(x));
    EXPECT_NEAR(fixed_exp_neg(lx).to_double(), x, 0.02) << "x=" << x;
  }
}

// --- Saturating variants: hardened entry points for counter-derived data ---

TEST(FixedSaturating, FromDoubleClampsOutOfRange) {
  // A wrapped 32-bit counter turns an IPC ratio into ~4e9; lround on the
  // scaled value is UB for plain from_double. The saturating variant clamps.
  EXPECT_EQ(Fixed::saturating_from_double(4e9), Fixed::max());
  EXPECT_EQ(Fixed::saturating_from_double(1e300), Fixed::max());
  EXPECT_EQ(Fixed::saturating_from_double(-4e9), Fixed::min());
  EXPECT_EQ(Fixed::saturating_from_double(
                std::numeric_limits<double>::infinity()),
            Fixed::max());
  EXPECT_EQ(Fixed::saturating_from_double(
                -std::numeric_limits<double>::infinity()),
            Fixed::min());
  EXPECT_EQ(Fixed::saturating_from_double(std::nan("")), Fixed{});
}

TEST(FixedSaturating, FromDoubleBitIdenticalInRange) {
  for (double v : {0.0, 1.0, -1.0, 0.5, -15.9, 3.14159, 32000.0, -32000.0,
                   1e-5, -1e-5}) {
    EXPECT_EQ(Fixed::saturating_from_double(v).raw(),
              Fixed::from_double(v).raw())
        << "v=" << v;
  }
}

TEST(FixedSaturating, AddClampsAndMatchesInRange) {
  EXPECT_EQ(saturating_add(Fixed::max(), Fixed::from_int(1)), Fixed::max());
  EXPECT_EQ(saturating_add(Fixed::min(), Fixed::from_int(-1)), Fixed::min());
  const Fixed a = Fixed::from_double(1234.5);
  const Fixed b = Fixed::from_double(-0.25);
  EXPECT_EQ(saturating_add(a, b).raw(), (a + b).raw());
}

TEST(FixedSaturating, MulClampsAndMatchesInRange) {
  const Fixed big = Fixed::from_int(30000);
  EXPECT_EQ(saturating_mul(big, big), Fixed::max());
  EXPECT_EQ(saturating_mul(big, -big), Fixed::min());
  const Fixed a = Fixed::from_double(2.5);
  const Fixed b = Fixed::from_double(1.25);
  EXPECT_EQ(saturating_mul(a, b).raw(), (a * b).raw());
  EXPECT_EQ(saturating_mul(a, -b).raw(), (a * -b).raw());
}

}  // namespace
}  // namespace sb
