#include "common/matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rng.h"

namespace sb {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 0) = 7;
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 3), std::out_of_range);
}

TEST(Matrix, InitializerList) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 6.0);
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(i.at(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, Transpose) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.at(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t.at(0, 0), 1.0);
}

TEST(Matrix, Product) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
  EXPECT_THROW(a * Matrix(3, 2), std::invalid_argument);
}

TEST(Matrix, SumDifferenceScale) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{4, 3}, {2, 1}};
  EXPECT_DOUBLE_EQ((a + b).at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ((a - b).at(1, 1), 3.0);
  EXPECT_DOUBLE_EQ((2.0 * a).at(1, 0), 6.0);
  EXPECT_THROW(a + Matrix(3, 3), std::invalid_argument);
}

TEST(Matrix, RowAndMaxAbs) {
  Matrix a = {{1, -9}, {3, 4}};
  EXPECT_EQ(a.row(0), (std::vector<double>{1, -9}));
  EXPECT_DOUBLE_EQ(a.max_abs(), 9.0);
  EXPECT_THROW(a.row(2), std::out_of_range);
}

TEST(SolveLinear, TwoByTwo) {
  // 2x + y = 5 ; x - y = 1  =>  x = 2, y = 1
  const auto x = solve_linear({{2, 1}, {1, -1}}, {5, 1});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLinear, NeedsPivoting) {
  // Leading zero forces a row swap.
  const auto x = solve_linear({{0, 1}, {1, 0}}, {3, 4});
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, SingularThrows) {
  EXPECT_THROW(solve_linear({{1, 1}, {2, 2}}, {1, 2}), std::runtime_error);
}

TEST(SolveLinear, ShapeChecked) {
  EXPECT_THROW(solve_linear(Matrix(2, 3), {1, 2}), std::invalid_argument);
  EXPECT_THROW(solve_linear(Matrix(2, 2), {1, 2, 3}), std::invalid_argument);
}

TEST(LeastSquares, RecoversExactCoefficients) {
  // y = 3 x1 - 2 x2 + 0.5, noiseless overdetermined system.
  Rng rng(5);
  const std::size_t n = 40;
  Matrix a(n, 3);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x1 = rng.uniform(-2, 2), x2 = rng.uniform(-2, 2);
    a.at(i, 0) = x1;
    a.at(i, 1) = x2;
    a.at(i, 2) = 1.0;
    b[i] = 3 * x1 - 2 * x2 + 0.5;
  }
  const auto c = least_squares(a, b);
  EXPECT_NEAR(c[0], 3.0, 1e-6);
  EXPECT_NEAR(c[1], -2.0, 1e-6);
  EXPECT_NEAR(c[2], 0.5, 1e-6);
}

TEST(LeastSquares, RidgeHandlesDegenerateColumn) {
  // Second column identically zero: plain normal equations are singular;
  // ridge regularization must still produce a finite solution.
  Rng rng(6);
  const std::size_t n = 20;
  Matrix a(n, 3);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0, 1);
    a.at(i, 0) = x;
    a.at(i, 1) = 0.0;
    a.at(i, 2) = 1.0;
    b[i] = 2 * x + 1;
  }
  const auto c = least_squares(a, b, 1e-6);
  EXPECT_NEAR(c[0], 2.0, 1e-3);
  EXPECT_NEAR(c[1], 0.0, 1e-6);
  EXPECT_NEAR(c[2], 1.0, 1e-3);
}

TEST(LeastSquares, NoisyFitIsClose) {
  Rng rng(7);
  const std::size_t n = 400;
  Matrix a(n, 2);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(-1, 1);
    a.at(i, 0) = x;
    a.at(i, 1) = 1.0;
    b[i] = 5 * x - 2 + rng.gaussian(0, 0.05);
  }
  const auto c = least_squares(a, b);
  EXPECT_NEAR(c[0], 5.0, 0.05);
  EXPECT_NEAR(c[1], -2.0, 0.05);
}

TEST(Dot, BasicsAndErrors) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_THROW(dot({1}, {1, 2}), std::invalid_argument);
}

}  // namespace
}  // namespace sb
