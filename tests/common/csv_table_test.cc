#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/csv.h"
#include "common/log.h"
#include "common/table.h"

namespace sb {
namespace {

TEST(Csv, HeaderAndRows) {
  CsvWriter w({"a", "b"});
  w.row(std::vector<std::string>{"1", "2"});
  w.row(std::vector<double>{3.5, 4.0});
  EXPECT_EQ(w.rows_written(), 2u);
  EXPECT_EQ(w.str(), "a,b\n1,2\n3.5,4\n");
}

TEST(Csv, ColumnCountEnforced) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.row(std::vector<std::string>{"only-one"}),
               std::invalid_argument);
}

TEST(Csv, EscapingPerRfc4180) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, FileUnopenableThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               std::runtime_error);
}

TEST(Table, AlignmentAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row("longer-label", {3.14159}, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
}

TEST(Banner, Prints) {
  std::ostringstream os;
  print_banner(os, "Section");
  EXPECT_EQ(os.str(), "\n=== Section ===\n");
}

TEST(Log, LevelFiltering) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // Builders below threshold do not crash and are cheap no-ops.
  log_debug() << "dropped";
  log_info() << "dropped";
  set_log_level(original);
}

}  // namespace
}  // namespace sb
