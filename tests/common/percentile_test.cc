// Hand-computed nearest-rank percentile cross-checks. The latency gates in
// bench/fig_latency.cc and the fleet dispatcher report both promise *exact*
// nearest-rank tails; these tests pin the rank arithmetic so a silent switch
// to interpolation (or an off-by-one in the rank) cannot pass.
#include "common/percentile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

namespace sb {
namespace {

TEST(NearestRank, TenElementHandComputed) {
  // sorted = {10, 20, ..., 100}; rank = ceil(q * 10) clamped to [1, 10].
  const std::vector<std::uint64_t> s = {10, 20, 30, 40, 50,
                                        60, 70, 80, 90, 100};
  EXPECT_EQ(nearest_rank(s, 0.50), 50u);   // rank ceil(5.0)  = 5
  EXPECT_EQ(nearest_rank(s, 0.95), 100u);  // rank ceil(9.5)  = 10
  EXPECT_EQ(nearest_rank(s, 0.99), 100u);  // rank ceil(9.9)  = 10
  EXPECT_EQ(nearest_rank(s, 0.90), 90u);   // rank ceil(9.0)  = 9
  EXPECT_EQ(nearest_rank(s, 1.00), 100u);  // rank 10
  EXPECT_EQ(nearest_rank(s, 0.0), 10u);    // rank clamps up to 1
  EXPECT_EQ(nearest_rank(s, 0.01), 10u);   // rank ceil(0.1)  = 1
}

TEST(NearestRank, HundredElementPercentilesAreExactRanks) {
  std::vector<std::uint64_t> s(100);
  std::iota(s.begin(), s.end(), 1);  // 1..100
  EXPECT_EQ(nearest_rank(s, 0.50), 50u);
  EXPECT_EQ(nearest_rank(s, 0.95), 95u);
  EXPECT_EQ(nearest_rank(s, 0.99), 99u);
}

TEST(NearestRank, InputOrderDoesNotMatter) {
  const std::vector<std::uint64_t> shuffled = {70, 10, 100, 40, 90,
                                               20, 60,  80, 30, 50};
  EXPECT_EQ(nearest_rank(shuffled, 0.50), 50u);
  EXPECT_EQ(nearest_rank(shuffled, 0.99), 100u);
}

TEST(NearestRank, EmptyAndSingleton) {
  EXPECT_EQ(nearest_rank({}, 0.99), 0u);
  const std::vector<std::uint64_t> one = {42};
  EXPECT_EQ(nearest_rank(one, 0.0), 42u);
  EXPECT_EQ(nearest_rank(one, 0.5), 42u);
  EXPECT_EQ(nearest_rank(one, 1.0), 42u);
}

TEST(TailOf, HandComputedSummary) {
  const std::vector<std::uint64_t> s = {10, 20, 30, 40, 50,
                                        60, 70, 80, 90, 100};
  const LatencyTail t = tail_of(s);
  EXPECT_EQ(t.count, 10u);
  EXPECT_DOUBLE_EQ(t.mean_ns, 55.0);
  EXPECT_EQ(t.p50_ns, 50u);
  EXPECT_EQ(t.p95_ns, 100u);
  EXPECT_EQ(t.p99_ns, 100u);
  EXPECT_EQ(t.max_ns, 100u);
}

TEST(TailOf, EmptySampleIsAllZero) {
  const LatencyTail t = tail_of({});
  EXPECT_EQ(t.count, 0u);
  EXPECT_DOUBLE_EQ(t.mean_ns, 0.0);
  EXPECT_EQ(t.p50_ns, 0u);
  EXPECT_EQ(t.p95_ns, 0u);
  EXPECT_EQ(t.p99_ns, 0u);
  EXPECT_EQ(t.max_ns, 0u);
}

TEST(TailOf, MatchesNearestRankOnLargeSample) {
  // 1000 samples: tail_of and nearest_rank must agree exactly.
  std::vector<std::uint64_t> s(1000);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = (i * 7919) % 100000;  // deterministic scatter
  }
  const LatencyTail t = tail_of(s);
  EXPECT_EQ(t.p50_ns, nearest_rank(s, 0.50));
  EXPECT_EQ(t.p95_ns, nearest_rank(s, 0.95));
  EXPECT_EQ(t.p99_ns, nearest_rank(s, 0.99));
  EXPECT_EQ(t.max_ns, *std::max_element(s.begin(), s.end()));
}

}  // namespace
}  // namespace sb
