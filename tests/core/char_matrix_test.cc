#include "core/char_matrix.h"

#include <gtest/gtest.h>

#include "arch/platform.h"
#include "core/trainer.h"
#include "perf/perf_model.h"
#include "power/power_model.h"

namespace sb::core {
namespace {

class CharMatrixTest : public ::testing::Test {
 protected:
  CharMatrixTest()
      : platform_(arch::Platform::quad_heterogeneous()),
        perf_(platform_),
        power_(platform_, perf_),
        trainer_(perf_, power_),
        model_(trainer_.train(PredictorTrainer::default_training_profiles())) {}

  ThreadObservation observation_on(CoreId core, std::uint64_t seed = 3) {
    Rng rng(seed);
    auto o = trainer_.synthesize_observation(
        PredictorTrainer::default_training_profiles()[5],
        platform_.type_of(core), rng);
    o.tid = 1;
    o.core = core;
    return o;
  }

  arch::Platform platform_;
  perf::PerfModel perf_;
  power::PowerModel power_;
  PredictorTrainer trainer_;
  PredictorModel model_;
};

TEST_F(CharMatrixTest, ShapeAndBookkeeping) {
  const auto mx = build_characterization(
      {observation_on(1), observation_on(2)}, model_, platform_);
  EXPECT_EQ(mx.num_threads(), 2u);
  EXPECT_EQ(mx.num_cores(), 4u);
  EXPECT_EQ(mx.tids.size(), 2u);
  EXPECT_EQ(mx.current[0], 1);
  EXPECT_EQ(mx.current[1], 2);
}

TEST_F(CharMatrixTest, MeasuredColumnPassesThrough) {
  const auto o = observation_on(1);
  const auto mx = build_characterization({o}, model_, platform_);
  // Column 1 (the core it ran on): measured IPC × nominal GHz.
  const double expect_gips = o.ipc * platform_.params_of(1).freq_ghz();
  EXPECT_NEAR(mx.s.at(0, 1), expect_gips, 1e-9);
  EXPECT_NEAR(mx.p.at(0, 1), o.power_w, 1e-9);
}

TEST_F(CharMatrixTest, OtherColumnsArePredictedAndPositive) {
  const auto mx = build_characterization({observation_on(0)}, model_,
                                         platform_);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_GT(mx.s.at(0, j), 0.0) << j;
    EXPECT_GT(mx.p.at(0, j), 0.0) << j;
  }
  // Strong cores should be predicted faster in absolute GIPS.
  EXPECT_GT(mx.s.at(0, 0), mx.s.at(0, 3));
  // And the Huge core costs far more watts than the Small core.
  EXPECT_GT(mx.p.at(0, 0), 5 * mx.p.at(0, 3));
}

TEST_F(CharMatrixTest, UnmeasuredThreadGetsNeutralPrior) {
  ThreadObservation o;
  o.tid = 9;
  o.core = 2;
  o.core_type = 2;
  o.measured = false;
  o.instructions = 0;
  const auto mx = build_characterization({o}, model_, platform_);
  for (std::size_t j = 0; j < 4; ++j) {
    // Prior: IPC 0.5 everywhere → GIPS = 0.5 × freq.
    EXPECT_NEAR(mx.s.at(0, j),
                0.5 * platform_.params_of(static_cast<CoreId>(j)).freq_ghz(),
                1e-9);
    EXPECT_GT(mx.p.at(0, j), 0.0);
  }
}

TEST_F(CharMatrixTest, DvfsOppsScaleThroughputAndPower) {
  std::vector<arch::OperatingPoint> opps;
  for (CoreId c = 0; c < 4; ++c) {
    const auto& p = platform_.params_of(c);
    opps.push_back({p.freq_mhz, p.vdd});
  }
  // Down-clock the Big core (id 1) to 40% frequency at reduced voltage.
  opps[1] = {platform_.params_of(1).freq_mhz * 0.4,
             platform_.params_of(1).vdd * 0.7};

  const auto o = observation_on(0);
  const auto nominal = build_characterization({o}, model_, platform_);
  const auto scaled = build_characterization({o}, model_, platform_, &opps);

  // Unchanged cores keep their values.
  EXPECT_NEAR(scaled.s.at(0, 0), nominal.s.at(0, 0), 1e-9);
  EXPECT_NEAR(scaled.s.at(0, 3), nominal.s.at(0, 3), 1e-9);
  // The down-clocked core serves fewer GIPS — though more than the raw 0.4
  // frequency ratio for this memory-leaning profile (memory latency in
  // cycles shrinks with the clock) — and burns far less power (V²f).
  EXPECT_LT(scaled.s.at(0, 1), 0.85 * nominal.s.at(0, 1));
  EXPECT_GT(scaled.s.at(0, 1), 0.35 * nominal.s.at(0, 1));
  EXPECT_LT(scaled.p.at(0, 1), 0.4 * nominal.p.at(0, 1));
}

TEST_F(CharMatrixTest, OppVectorSizeValidated) {
  std::vector<arch::OperatingPoint> wrong(2, {1000, 0.8});
  EXPECT_THROW(build_characterization({observation_on(0)}, model_, platform_,
                                      &wrong),
               std::invalid_argument);
}

TEST_F(CharMatrixTest, EmptyObservationsGiveEmptyMatrices) {
  const auto mx = build_characterization({}, model_, platform_);
  EXPECT_EQ(mx.num_threads(), 0u);
}

}  // namespace
}  // namespace sb::core
