// Unit and property tests for the sharded hierarchical balancer
// (core/shard.h): the --shards= grammar, the partition function's
// true-partition invariants under fuzzed platforms, the kind-preserving
// objective restrictions, and the ShardedBalancer determinism contract —
// worker-count independence and the K=1 bit-identity with the unsharded
// optimizer that anchors the --shards=1 golden equivalence.
#include "core/shard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bitset>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "common/rng.h"
#include "core/objective.h"
#include "core/sa_optimizer.h"

namespace sb::core {
namespace {

TEST(ShardingConfig, ParsesGrammar) {
  const auto k = ShardingConfig::parse("8");
  EXPECT_EQ(k.shards, 8);
  EXPECT_EQ(k.jobs, 0);
  EXPECT_EQ(k.exchange_moves, -1);  // auto

  const auto kj = ShardingConfig::parse("8:4");
  EXPECT_EQ(kj.shards, 8);
  EXPECT_EQ(kj.jobs, 4);
  EXPECT_EQ(kj.exchange_moves, -1);

  const auto kjm = ShardingConfig::parse("8:4:16");
  EXPECT_EQ(kjm.shards, 8);
  EXPECT_EQ(kjm.jobs, 4);
  EXPECT_EQ(kjm.exchange_moves, 16);

  // "0" parses (sharding disabled), and moves=0 disables the exchange.
  EXPECT_FALSE(ShardingConfig::parse("0").enabled());
  EXPECT_TRUE(ShardingConfig::parse("1").enabled());
  EXPECT_EQ(ShardingConfig::parse("4:0:0").exchange_moves, 0);
}

TEST(ShardingConfig, ToStringRoundTrips) {
  for (const std::string spec : {"8", "8:4", "8:4:16", "1", "4:0:0", "2:1"}) {
    const auto cfg = ShardingConfig::parse(spec);
    const auto again = ShardingConfig::parse(cfg.to_string());
    EXPECT_EQ(again.shards, cfg.shards) << spec;
    EXPECT_EQ(again.jobs, cfg.jobs) << spec;
    EXPECT_EQ(again.exchange_moves, cfg.exchange_moves) << spec;
  }
  EXPECT_EQ(ShardingConfig::parse("8").to_string(), "8");
  EXPECT_EQ(ShardingConfig::parse("8:4:16").to_string(), "8:4:16");
}

TEST(ShardingConfig, ParseErrors) {
  for (const std::string bad :
       {"", ":", "8:", ":4", "8:4:16:2", "-1", "8:-2", "8:4:-2", "abc", "8x",
        "8:4x", " 8", "8 ", "2048",  // beyond kMaxCores
        "99999999999999999999"}) {
    EXPECT_THROW(ShardingConfig::parse(bad), std::invalid_argument)
        << "'" << bad << "'";
  }
}

TEST(ShardingConfig, FuzzedSpecsEitherParseOrThrowInvalidArgument) {
  // The CLI surface: arbitrary bytes must never leak std::out_of_range
  // from numeric conversion or crash — only std::invalid_argument.
  Rng rng(2024);
  const std::string alphabet = "0123456789:-+x abc";
  for (int it = 0; it < 10'000; ++it) {
    std::string spec;
    const int len = static_cast<int>(rng.randi(0, 12));
    for (int i = 0; i < len; ++i) {
      spec += alphabet[static_cast<std::size_t>(
          rng.randi(0, static_cast<std::int64_t>(alphabet.size())))];
    }
    try {
      const auto cfg = ShardingConfig::parse(spec);
      EXPECT_GE(cfg.shards, 0) << spec;
    } catch (const std::invalid_argument&) {
      // expected for malformed specs
    }
  }
}

arch::Platform two_type_platform(int big, int little) {
  arch::Platform p;
  if (big > 0) p.add_cores(arch::big_core(), big);
  if (little > 0) p.add_cores(arch::small_core(), little);
  p.validate();
  return p;
}

void expect_true_partition(const arch::Platform& platform, int shards) {
  const ShardPartition part = make_shard_partition(platform, shards);
  const int n = platform.num_cores();
  const int k = std::min(shards, n);
  ASSERT_EQ(part.num_shards(), k);
  ASSERT_EQ(part.shard_of.size(), static_cast<std::size_t>(n));

  std::set<CoreId> seen;
  for (int sidx = 0; sidx < part.num_shards(); ++sidx) {
    const auto& cores = part.cores[static_cast<std::size_t>(sidx)];
    // Non-empty (k <= n by construction) and strictly ascending.
    EXPECT_FALSE(cores.empty()) << "shard " << sidx << " empty, n=" << n
                                << " k=" << k;
    EXPECT_TRUE(std::is_sorted(cores.begin(), cores.end()));
    for (const CoreId c : cores) {
      ASSERT_GE(c, 0);
      ASSERT_LT(c, n);
      // Membership and the reverse map agree, and no core is in two shards.
      EXPECT_EQ(part.shard_of[static_cast<std::size_t>(c)], sidx);
      EXPECT_TRUE(seen.insert(c).second) << "core " << c << " in two shards";
    }
  }
  // Every core is in exactly one shard.
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
}

TEST(ShardPartition, IsTruePartitionUnderFuzzedConfigs) {
  Rng rng(7);
  for (int it = 0; it < 10'000; ++it) {
    arch::Platform platform;
    switch (rng.randi(0, 3)) {
      case 0:  // two-type big.LITTLE, possibly lopsided
        platform = two_type_platform(static_cast<int>(rng.randi(1, 17)),
                                     static_cast<int>(rng.randi(0, 33)));
        break;
      case 1:  // four-type scaled HMP
        platform = arch::Platform::scaled_heterogeneous(
            static_cast<int>(rng.randi(1, 9)));
        break;
      default:  // single-type
        platform = two_type_platform(static_cast<int>(rng.randi(1, 49)), 0);
        break;
    }
    // K from degenerate 1 up to past the core count (clamped).
    const int shards =
        static_cast<int>(rng.randi(1, platform.num_cores() + 6));
    expect_true_partition(platform, shards);
  }
}

TEST(ShardPartition, SingletonTypesSpreadAcrossShards) {
  // Four one-core types, four shards: the rotating remainder cursor must
  // put one core in each shard instead of piling all four onto shard 0.
  const auto platform = arch::Platform::scaled_heterogeneous(1);
  ASSERT_EQ(platform.num_cores(), 4);
  ASSERT_EQ(platform.num_types(), 4);
  const ShardPartition part = make_shard_partition(platform, 4);
  ASSERT_EQ(part.num_shards(), 4);
  for (const auto& cores : part.cores) {
    EXPECT_EQ(cores.size(), 1u);
  }
}

TEST(ShardPartition, ClampsAndThrows) {
  const auto platform = two_type_platform(2, 2);
  EXPECT_EQ(make_shard_partition(platform, 100).num_shards(), 4);
  EXPECT_EQ(make_shard_partition(platform, 1).num_shards(), 1);
  EXPECT_THROW(make_shard_partition(platform, 0), std::invalid_argument);
  EXPECT_THROW(make_shard_partition(platform, -3), std::invalid_argument);
}

CoreSums sums(double gips, double watts, double load, int nthreads) {
  CoreSums s;
  s.gips = gips;
  s.watts = watts;
  s.load = load;
  s.nthreads = nthreads;
  return s;
}

TEST(RestrictToCores, EnergyEfficiencyRemapsPerCoreWeights) {
  EnergyEfficiencyObjective base(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  const std::vector<CoreId> cores = {2, 0};
  const auto restricted = base.restrict_to_cores(cores);
  ASSERT_NE(restricted, nullptr);
  // Kind preserved: the optimizer's devirtualized kernel still applies.
  EXPECT_EQ(restricted->kind(), ObjectiveKind::kEnergyEfficiency);
  const CoreSums s = sums(6.0, 2.0, 1.0, 1);
  // Local column j scores exactly like physical core cores[j].
  EXPECT_DOUBLE_EQ(restricted->core_term(s, 0), base.core_term(s, 2));
  EXPECT_DOUBLE_EQ(restricted->core_term(s, 1), base.core_term(s, 0));
  EXPECT_DOUBLE_EQ(restricted->core_term(s, 0), 3.0 * 6.0 / 2.0);
}

TEST(RestrictToCores, GlobalEfficiencyRemapsSleepPower) {
  GlobalEfficiencyObjective base(std::vector<double>{0.1, 0.2, 0.3});
  const std::vector<CoreId> cores = {1};
  const auto restricted = base.restrict_to_cores(cores);
  EXPECT_EQ(restricted->kind(), ObjectiveKind::kGlobalEfficiency);
  EXPECT_TRUE(restricted->fractional());
  const CoreSums half = sums(2.0, 1.0, 0.5, 1);
  const auto fr = restricted->core_fraction(half, 0);
  const auto fb = base.core_fraction(half, 1);
  EXPECT_DOUBLE_EQ(fr[0], fb[0]);
  EXPECT_DOUBLE_EQ(fr[1], fb[1]);
  // Idle-fraction sleep power uses core 1's 0.2 W, not column 0's 0.1 W.
  EXPECT_DOUBLE_EQ(fr[1], 1.0 + 0.2 * 0.5);
}

TEST(RestrictToCores, StatelessObjectivesCloneByKind) {
  ThroughputObjective tp;
  EdpObjective edp;
  const std::vector<CoreId> cores = {3, 1};
  EXPECT_EQ(tp.restrict_to_cores(cores)->kind(), ObjectiveKind::kThroughput);
  EXPECT_EQ(edp.restrict_to_cores(cores)->kind(), ObjectiveKind::kEdp);
  const CoreSums s = sums(4.0, 2.0, 2.0, 2);
  EXPECT_DOUBLE_EQ(tp.restrict_to_cores(cores)->core_term(s, 0),
                   tp.core_term(s, 3));
}

/// Custom objective exercising the default (wrapper) restriction path:
/// scores core c as (c + 1) · gips, so the remap is directly observable.
class CoreIndexObjective final : public BalanceObjective {
 public:
  double core_term(const CoreSums& s, CoreId core) const override {
    return static_cast<double>(core + 1) * s.gips;
  }
  std::string name() const override { return "core_index"; }
};

TEST(RestrictToCores, DefaultWrapperRemapsCustomObjectives) {
  CoreIndexObjective base;
  const std::vector<CoreId> cores = {5, 2};
  const auto restricted = base.restrict_to_cores(cores);
  // Wrapper cannot preserve the (custom) kind — and must not pretend to.
  EXPECT_EQ(restricted->kind(), ObjectiveKind::kCustom);
  EXPECT_FALSE(restricted->fractional());
  const CoreSums s = sums(2.0, 1.0, 1.0, 1);
  EXPECT_DOUBLE_EQ(restricted->core_term(s, 0), base.core_term(s, 5));
  EXPECT_DOUBLE_EQ(restricted->core_term(s, 1), base.core_term(s, 2));
}

/// A ShardedBalancer problem instance over a real platform: m threads on
/// the platform's n cores with value-random S/P and CPU-bound demand.
struct Instance {
  Matrix s, p;
  std::vector<CoreId> initial;
  std::vector<std::bitset<kMaxCores>> affinity;
  std::vector<double> demand;
};

Instance random_instance(const arch::Platform& platform, std::size_t m,
                         std::uint64_t seed) {
  Rng rng(seed);
  const auto n = static_cast<std::size_t>(platform.num_cores());
  Instance inst{Matrix(m, n), Matrix(m, n), {}, {}, {}};
  std::bitset<kMaxCores> all;
  for (std::size_t j = 0; j < n; ++j) all.set(j);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      inst.s.at(i, j) = rng.uniform(0.1, 4.0);
      inst.p.at(i, j) = rng.uniform(0.05, 3.0);
    }
    inst.initial.push_back(
        static_cast<CoreId>(rng.randi(0, static_cast<std::int64_t>(n))));
    inst.affinity.push_back(all);
    inst.demand.push_back(-1.0);  // CPU-bound
  }
  return inst;
}

TEST(ShardedBalancer, SingleShardIsBitIdenticalToUnshardedOptimizer) {
  // The contract behind the --shards=1 golden equivalence: one shard means
  // the sub-problem IS the problem and shard 0's seed IS the pass seed, so
  // the merged result must replay the unsharded annealing trajectory
  // bit for bit — exact ==, not tolerance.
  const auto platform = arch::Platform::scaled_heterogeneous(1);
  const auto inst = random_instance(platform, 8, 42);
  EnergyEfficiencyObjective obj;
  SaConfig sa;
  sa.max_iterations = 2000;
  const std::uint64_t pass_seed = 0xfeedULL;

  ShardingConfig cfg;
  cfg.shards = 1;
  ShardedBalancer sharded(platform, cfg, sa);
  const SaResult a =
      sharded.balance(0, pass_seed, inst.s, inst.p, obj, inst.initial,
                      inst.affinity, inst.demand, nullptr, 0);

  SaOptimizer ref(sa);
  ref.set_seed(pass_seed);
  const SaResult b = ref.optimize(inst.s, inst.p, obj, inst.initial,
                                  &inst.affinity, &inst.demand);

  EXPECT_EQ(a.allocation, b.allocation);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.initial_objective, b.initial_objective);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.accepted_worse, b.accepted_worse);
  EXPECT_EQ(a.improved, b.improved);
}

TEST(ShardedBalancer, ResultsIndependentOfWorkerCount) {
  // jobs=1 vs jobs=8 must produce the same numbers: every shard writes only
  // its own slot and seeds from (pass seed, shard index), never from
  // execution order.
  const auto platform = arch::Platform::scaled_heterogeneous(4);  // 16 cores
  const auto inst = random_instance(platform, 32, 7);
  EnergyEfficiencyObjective obj;
  SaConfig sa;
  sa.max_iterations = 4000;

  auto run = [&](int jobs) {
    ShardingConfig cfg;
    cfg.shards = 4;
    cfg.jobs = jobs;
    ShardedBalancer b(platform, cfg, sa);
    return b.balance(0, 0x1234ULL, inst.s, inst.p, obj, inst.initial,
                     inst.affinity, inst.demand, nullptr, 0);
  };
  const SaResult seq = run(1);
  const SaResult par = run(8);
  EXPECT_EQ(seq.allocation, par.allocation);
  EXPECT_EQ(seq.objective, par.objective);
  EXPECT_EQ(seq.initial_objective, par.initial_objective);
  EXPECT_EQ(seq.iterations, par.iterations);
}

TEST(ShardedBalancer, MergedObjectiveNeverWorseThanInitial) {
  // Per-shard SA only improves its local objective and the exchange phase
  // reverts non-improving moves, so the merged global J cannot regress.
  const auto platform = arch::Platform::scaled_heterogeneous(2);  // 8 cores
  EnergyEfficiencyObjective obj;
  SaConfig sa;
  sa.max_iterations = 2000;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const auto inst = random_instance(platform, 16, seed);
    ShardingConfig cfg;
    cfg.shards = 4;
    ShardedBalancer b(platform, cfg, sa);
    const SaResult r =
        b.balance(0, seed, inst.s, inst.p, obj, inst.initial, inst.affinity,
                  inst.demand, nullptr, 0);
    EXPECT_GE(r.objective, r.initial_objective - 1e-9) << "seed " << seed;
    ASSERT_EQ(r.allocation.size(), inst.initial.size());
    for (std::size_t i = 0; i < r.allocation.size(); ++i) {
      EXPECT_GE(r.allocation[i], 0);
      EXPECT_LT(r.allocation[i], platform.num_cores());
    }
    // Accounting is wired: every non-empty shard ran and was counted.
    EXPECT_GT(b.last_pass().shard_passes, 0);
    EXPECT_GT(b.last_pass().iterations_total, 0);
    EXPECT_GT(b.shard_cpu_ns_total(), 0u);
  }
}

TEST(ShardedBalancer, RespectsAffinityMasks) {
  // Pin every thread to its initial core: neither the shard anneals nor the
  // exchange phase may move anything.
  const auto platform = arch::Platform::scaled_heterogeneous(2);
  auto inst = random_instance(platform, 12, 99);
  for (std::size_t i = 0; i < inst.affinity.size(); ++i) {
    inst.affinity[i].reset();
    inst.affinity[i].set(static_cast<std::size_t>(inst.initial[i]));
  }
  ShardingConfig cfg;
  cfg.shards = 4;
  SaConfig sa;
  sa.max_iterations = 1000;
  EnergyEfficiencyObjective obj;
  ShardedBalancer b(platform, cfg, sa);
  const SaResult r = b.balance(0, 5, inst.s, inst.p, obj, inst.initial,
                               inst.affinity, inst.demand, nullptr, 0);
  EXPECT_EQ(r.allocation, inst.initial);
  EXPECT_EQ(b.last_pass().exchange_moves, 0);
}

}  // namespace
}  // namespace sb::core
