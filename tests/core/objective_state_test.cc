// Property tests for the incrementally maintained ObjectiveState: after any
// sequence of single-thread moves, the running total must match a fresh
// full recompute (rebuild) and the reference evaluate_allocation — for all
// built-in objectives, additive and fractional, with and without demand
// weighting.
#include "core/objective_state.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "core/objective.h"
#include "core/sa_optimizer.h"

namespace sb::core {
namespace {

struct Instance {
  Matrix s, p;
  std::vector<double> demand;
  std::vector<CoreId> alloc;
};

Instance random_instance(std::size_t m, std::size_t n, std::uint64_t seed,
                         bool with_demand) {
  Rng rng(seed);
  Instance inst{Matrix(m, n), Matrix(m, n), {}, {}};
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      inst.s.at(i, j) = rng.uniform(0.1, 4.0);
      inst.p.at(i, j) = rng.uniform(0.05, 3.0);
    }
    inst.demand.push_back(with_demand && i % 3 != 0
                              ? rng.uniform(0.05, 1.5)
                              : -1.0);
    inst.alloc.push_back(
        static_cast<CoreId>(rng.randi(0, static_cast<std::int64_t>(n))));
  }
  return inst;
}

/// Runs `moves` random single-thread migrations through one incremental
/// state and checks, at every step, that the incremental total matches a
/// state rebuilt from scratch on the same allocation.
template <class Obj>
void check_incremental_matches_rebuild(const Obj& objective,
                                       std::uint64_t seed, bool with_demand) {
  const std::size_t m = 9, n = 4;
  const auto inst = random_instance(m, n, seed, with_demand);
  const std::vector<double>* demand = with_demand ? &inst.demand : nullptr;

  ObjectiveScratch scratch;
  ObjectiveState<Obj> state(scratch, inst.s, inst.p, objective, inst.alloc,
                            demand);
  std::vector<CoreId> alloc = inst.alloc;

  Rng rng(seed ^ 0xfeedULL);
  constexpr int kMoves = 200;
  for (int k = 0; k < kMoves; ++k) {
    const auto i = static_cast<std::size_t>(
        rng.randi(0, static_cast<std::int64_t>(m)));
    const auto to = static_cast<CoreId>(
        rng.randi(0, static_cast<std::int64_t>(n)));
    const CoreId from = alloc[i];
    if (to == from) continue;
    state.remove_thread(i, from);
    state.add_thread(i, to);
    state.refresh_cores(from, to);
    alloc[i] = to;

    // Reference 1: an independent state built fresh on this allocation.
    ObjectiveScratch fresh_scratch;
    ObjectiveState<Obj> fresh(fresh_scratch, inst.s, inst.p, objective, alloc,
                              demand);
    ASSERT_NEAR(state.total(), fresh.total(),
                1e-9 * std::max(1.0, std::abs(fresh.total())))
        << "objective " << objective.name() << " diverged after move " << k;
  }

  // Rebuild on the same scratch must reproduce the incremental total within
  // the documented drift bound (it is the resync anchor).
  const double incremental = state.total();
  state.rebuild(alloc);
  EXPECT_NEAR(state.total(), incremental,
              kObjectiveDriftBound * std::max(1.0, std::abs(state.total())));
}

TEST(ObjectiveState, EnergyEfficiencyIncrementalMatchesRebuild) {
  EnergyEfficiencyObjective obj;
  check_incremental_matches_rebuild(obj, 1, false);
  check_incremental_matches_rebuild(obj, 2, true);
}

TEST(ObjectiveState, ThroughputIncrementalMatchesRebuild) {
  ThroughputObjective obj;
  check_incremental_matches_rebuild(obj, 3, false);
  check_incremental_matches_rebuild(obj, 4, true);
}

TEST(ObjectiveState, EdpIncrementalMatchesRebuild) {
  EdpObjective obj;
  check_incremental_matches_rebuild(obj, 5, false);
  check_incremental_matches_rebuild(obj, 6, true);
}

TEST(ObjectiveState, FractionalGlobalEfficiencyIncrementalMatchesRebuild) {
  GlobalEfficiencyObjective obj(std::vector<double>{0.1, 0.2, 0.15, 0.05});
  check_incremental_matches_rebuild(obj, 7, false);
  check_incremental_matches_rebuild(obj, 8, true);
}

TEST(ObjectiveState, MatchesEvaluateAllocationReference) {
  // The state's total on a fixed allocation equals the public reference
  // entry point (which routes through the generic virtual instantiation).
  const auto inst = random_instance(7, 3, 11, false);
  EnergyEfficiencyObjective obj;
  ObjectiveScratch scratch;
  ObjectiveState<EnergyEfficiencyObjective> state(scratch, inst.s, inst.p,
                                                  obj, inst.alloc);
  EXPECT_DOUBLE_EQ(state.total(),
                   evaluate_allocation(inst.s, inst.p, obj, inst.alloc));
}

TEST(ObjectiveState, OccupancyMatchesDemandSemantics) {
  // demand < 0 → full share; demand >= 0 → clamp(d / s_ij, 0.02, 1).
  Matrix s = {{2.0, 0.5}, {4.0, 0.1}};
  Matrix p = {{1.0, 0.2}, {1.0, 0.3}};
  std::vector<double> demand = {-1.0, 1.0};
  EnergyEfficiencyObjective obj;
  ObjectiveScratch scratch;
  ObjectiveState<EnergyEfficiencyObjective> state(scratch, s, p, obj, {0, 0},
                                                  &demand);
  EXPECT_DOUBLE_EQ(state.occupancy(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(state.occupancy(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(state.occupancy(1, 0), 0.25);      // 1.0 / 4.0
  EXPECT_DOUBLE_EQ(state.occupancy(1, 1), 1.0);       // saturates
}

TEST(ObjectiveState, ScratchReuseAcrossProblemSizesIsClean) {
  // A scratch grown by a big instance must serve a smaller one with no
  // leftover contributions (assign() resets the active prefix).
  EnergyEfficiencyObjective obj;
  ObjectiveScratch scratch;
  const auto big = random_instance(12, 6, 21, true);
  {
    ObjectiveState<EnergyEfficiencyObjective> state(scratch, big.s, big.p,
                                                    obj, big.alloc,
                                                    &big.demand);
    EXPECT_GT(state.total(), 0.0);
  }
  const auto small = random_instance(3, 2, 22, false);
  ObjectiveState<EnergyEfficiencyObjective> state(scratch, small.s, small.p,
                                                  obj, small.alloc);
  EXPECT_DOUBLE_EQ(
      state.total(),
      evaluate_allocation(small.s, small.p, obj, small.alloc));
}

}  // namespace
}  // namespace sb::core
