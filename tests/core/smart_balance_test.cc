#include "core/smart_balance.h"

#include <gtest/gtest.h>

#include <memory>

#include "arch/platform.h"
#include "core/trainer.h"
#include "os/kernel.h"
#include "os/vanilla_balancer.h"
#include "perf/perf_model.h"
#include "power/power_model.h"
#include "workload/benchmarks.h"

namespace sb::core {
namespace {

class SmartBalanceTest : public ::testing::Test {
 protected:
  SmartBalanceTest()
      : platform_(arch::Platform::quad_heterogeneous()),
        perf_(platform_),
        power_(platform_, perf_) {}

  PredictorModel trained_model() {
    PredictorTrainer trainer(perf_, power_);
    return trainer.train(PredictorTrainer::default_training_profiles());
  }

  std::unique_ptr<SmartBalancePolicy> make_policy(
      SmartBalanceConfig cfg = SmartBalanceConfig()) {
    return std::make_unique<SmartBalancePolicy>(platform_, trained_model(),
                                                cfg);
  }

  void add_workload(os::Kernel& k, const std::string& name, int threads,
                    std::uint64_t seed = 5) {
    Rng rng(seed);
    for (auto& tb : workload::BenchmarkLibrary::get(name).spawn(threads, rng)) {
      k.fork(std::move(tb));
    }
  }

  double run_efficiency(std::unique_ptr<os::LoadBalancer> balancer) {
    os::Kernel k(platform_, perf_, power_);
    k.set_balancer(std::move(balancer));
    add_workload(k, "canneal", 2);
    add_workload(k, "swaptions", 2);
    k.run_for(milliseconds(600));
    return static_cast<double>(k.total_instructions()) /
           k.energy().total_joules();
  }

  arch::Platform platform_;
  perf::PerfModel perf_;
  power::PowerModel power_;
};

TEST_F(SmartBalanceTest, BeatsVanillaOnDiverseWorkload) {
  const double vanilla =
      run_efficiency(std::make_unique<os::VanillaBalancer>());
  const double smart = run_efficiency(make_policy());
  EXPECT_GT(smart, 1.2 * vanilla)
      << "diverse canneal+swaptions workload must show a clear gain";
}

TEST_F(SmartBalanceTest, EpochIntervalIsConfigured) {
  SmartBalanceConfig cfg;
  cfg.epoch = milliseconds(45);
  const auto p = make_policy(cfg);
  EXPECT_EQ(p->interval(), milliseconds(45));
  EXPECT_EQ(p->name(), "smartbalance");
}

TEST_F(SmartBalanceTest, CollectsPhaseOverheadStats) {
  os::Kernel k(platform_, perf_, power_);
  auto policy = make_policy();
  auto* pp = policy.get();
  k.set_balancer(std::move(policy));
  add_workload(k, "bodytrack", 4);
  k.run_for(milliseconds(300));
  EXPECT_GE(pp->passes(), 4u);
  EXPECT_GT(pp->sense_ns().count(), 0u);
  EXPECT_GT(pp->predict_ns().count(), 0u);
  EXPECT_GT(pp->optimize_ns().count(), 0u);
  EXPECT_GT(pp->optimize_ns().mean(), 0.0);
  // On a quad-core the whole pass must be far below the 60 ms epoch (<1%,
  // paper §6.3) — allow 10% here for sanitizer/debug builds.
  const double total_us = (pp->sense_ns().mean() + pp->predict_ns().mean() +
                           pp->optimize_ns().mean()) /
                          1e3;
  EXPECT_LT(total_us, 6000.0);
}

TEST_F(SmartBalanceTest, BuildsFullCharacterizationMatrices) {
  os::Kernel k(platform_, perf_, power_);
  auto policy = make_policy();
  auto* pp = policy.get();
  k.set_balancer(std::move(policy));
  add_workload(k, "ferret", 6);
  k.run_for(milliseconds(130));
  const auto& mx = pp->last_matrices();
  EXPECT_EQ(mx.num_threads(), 6u);
  EXPECT_EQ(mx.num_cores(), 4u);
  for (std::size_t i = 0; i < mx.num_threads(); ++i) {
    for (std::size_t j = 0; j < mx.num_cores(); ++j) {
      EXPECT_GT(mx.s.at(i, j), 0.0) << i << "," << j;
      EXPECT_GT(mx.p.at(i, j), 0.0) << i << "," << j;
    }
  }
}

TEST_F(SmartBalanceTest, ReallocatesAwayFromInefficientPlacement) {
  // One compute-hungry and one memory-bound thread, deliberately placed so
  // the Huge core burns watts on pointer chasing. SmartBalance must (a)
  // take canneal off the Huge core — the worst possible IPS/W pairing —
  // and (b) beat the do-nothing policy's global efficiency.
  auto run = [&](bool smart) {
    os::Kernel k(platform_, perf_, power_);
    if (smart) {
      k.set_balancer(make_policy());
    } else {
      k.set_balancer(std::make_unique<os::NullBalancer>());
    }
    Rng rng(3);
    auto compute = workload::BenchmarkLibrary::get("swaptions").spawn(1, rng)[0];
    auto memory = workload::BenchmarkLibrary::get("canneal").spawn(1, rng)[0];
    k.fork_on(std::move(memory), 0);   // canneal on Huge
    k.fork_on(std::move(compute), 3);  // swaptions on Small
    k.run_for(milliseconds(400));
    if (smart) {
      EXPECT_NE(k.task(0).cpu, 0) << "canneal must leave the Huge core";
    }
    return static_cast<double>(k.total_instructions()) /
           k.energy().total_joules();
  };
  const double pinned = run(false);
  const double smart = run(true);
  EXPECT_GT(smart, 1.5 * pinned);
}

TEST_F(SmartBalanceTest, MigrationCooldownLimitsChurn) {
  SmartBalanceConfig cfg;
  cfg.migration_cooldown_epochs = 2;
  os::Kernel k(platform_, perf_, power_);
  k.set_balancer(make_policy(cfg));
  add_workload(k, "x264_H_crew", 4);
  k.run_for(milliseconds(600));
  // 10 epochs × 4 threads: unbounded thrash would be ~40 migrations.
  EXPECT_LT(k.total_migrations(), 25u);
}

TEST_F(SmartBalanceTest, RespectsAffinityMasks) {
  os::Kernel k(platform_, perf_, power_);
  k.set_balancer(make_policy());
  Rng rng(4);
  auto tb = workload::BenchmarkLibrary::get("swaptions").spawn(1, rng)[0];
  const ThreadId t = k.fork_on(std::move(tb), 3);
  std::bitset<kMaxCores> mask;
  mask.set(3);
  k.set_cpus_allowed(t, mask);
  add_workload(k, "bodytrack", 3);
  k.run_for(milliseconds(300));
  EXPECT_EQ(k.task(t).cpu, 3) << "pinned thread must never be migrated";
}

TEST_F(SmartBalanceTest, HandlesEmptySystemGracefully) {
  os::Kernel k(platform_, perf_, power_);
  auto policy = make_policy();
  auto* pp = policy.get();
  k.set_balancer(std::move(policy));
  EXPECT_NO_THROW(k.run_for(milliseconds(200)));
  EXPECT_GE(pp->passes(), 2u);
}

TEST_F(SmartBalanceTest, SurvivesSensorFailureEpochs) {
  // Failure injection: the power-sensing path reports garbage (zero-energy
  // epochs via an all-virtual sensor bank plus an untrained power model
  // would be worst case; here we blast the counters with extreme noise).
  // The loop must neither crash nor livelock in migrations.
  SmartBalanceConfig cfg;
  cfg.sensing.counter_noise_sigma = 0.5;  // 50% per-counter noise
  cfg.sensing.energy_noise_sigma = 0.8;
  os::Kernel k(platform_, perf_, power_);
  k.set_balancer(make_policy(cfg));
  add_workload(k, "ferret", 6);
  EXPECT_NO_THROW(k.run_for(milliseconds(600)));
  EXPECT_GT(k.total_instructions(), 0u);
  // Hysteresis + cooldown keep churn bounded even under garbage sensing.
  EXPECT_LT(k.total_migrations(), 60u);
}

TEST_F(SmartBalanceTest, HandlesZeroPowerObservations) {
  // A sensor outage that reads zero joules must not produce NaN/inf in the
  // characterization (power floor clamps) nor crash the optimizer.
  SmartBalanceConfig cfg;
  cfg.power_sensor_cores.reset();  // every reading comes from Eq. 9
  os::Kernel k(platform_, perf_, power_);
  auto policy = std::make_unique<SmartBalancePolicy>(
      platform_, PredictorModel(platform_.num_types()), cfg);  // UNTRAINED
  k.set_balancer(std::move(policy));
  add_workload(k, "bodytrack", 4);
  EXPECT_NO_THROW(k.run_for(milliseconds(300)));
  EXPECT_GT(k.total_instructions(), 0u);
}

TEST_F(SmartBalanceTest, CustomObjectiveIsUsed) {
  // A throughput objective should keep strong cores busier than the
  // efficiency objective would.
  os::Kernel k(platform_, perf_, power_);
  SmartBalanceConfig cfg;
  k.set_balancer(std::make_unique<SmartBalancePolicy>(
      platform_, trained_model(), cfg,
      std::make_unique<ThroughputObjective>()));
  add_workload(k, "blackscholes", 2);
  k.run_for(milliseconds(400));
  // Both threads should land on the two strongest cores (Huge+Big).
  for (ThreadId t : k.alive_threads()) {
    EXPECT_LE(k.task(t).cpu, 1) << "throughput goal prefers strong cores";
  }
}

}  // namespace
}  // namespace sb::core
