// Persistence round-trip tests for the predictor model (the deployment
// path: train offline, ship the text blob, load at boot).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "arch/platform.h"
#include "core/predictor.h"
#include "core/trainer.h"
#include "perf/perf_model.h"
#include "power/power_model.h"

namespace sb::core {
namespace {

PredictorModel trained_model() {
  const auto platform = arch::Platform::quad_heterogeneous();
  const perf::PerfModel perf(platform);
  const power::PowerModel power(platform, perf);
  PredictorTrainer::Config cfg;
  cfg.replicas = 4;
  const PredictorTrainer trainer(perf, power, cfg);
  return trainer.train(PredictorTrainer::default_training_profiles());
}

TEST(PredictorIo, StreamRoundTripIsExact) {
  const PredictorModel original = trained_model();
  std::stringstream buf;
  original.save(buf);
  const PredictorModel restored = PredictorModel::load(buf);
  EXPECT_TRUE(restored == original)
      << "17-significant-digit serialization must round-trip exactly";
  // Spot-check behaviour, not just representation.
  ThreadObservation o;
  o.core_type = 0;
  o.ipc = 2.1;
  o.imsh = 0.3;
  o.measured = true;
  EXPECT_DOUBLE_EQ(restored.predict_ipc(o, 2, 2000, 1000),
                   original.predict_ipc(o, 2, 2000, 1000));
  EXPECT_DOUBLE_EQ(restored.predict_power(1, 1.5),
                   original.predict_power(1, 1.5));
}

TEST(PredictorIo, FileRoundTrip) {
  const std::string path = "predictor_io_test_tmp.model";
  const PredictorModel original = trained_model();
  original.save_to_file(path);
  const PredictorModel restored = PredictorModel::load_from_file(path);
  EXPECT_TRUE(restored == original);
  std::remove(path.c_str());
}

TEST(PredictorIo, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(PredictorModel::load(empty), std::runtime_error);

  std::stringstream wrong_magic("not-a-model v1\ntypes 2\n");
  EXPECT_THROW(PredictorModel::load(wrong_magic), std::runtime_error);

  std::stringstream bad_types("smartbalance-predictor v1\ntypes -3\n");
  EXPECT_THROW(PredictorModel::load(bad_types), std::runtime_error);

  std::stringstream truncated(
      "smartbalance-predictor v1\ntypes 2\nipc_bounds 0.02 8\ntheta 0 1 1 2");
  EXPECT_THROW(PredictorModel::load(truncated), std::runtime_error);

  std::stringstream bad_index(
      "smartbalance-predictor v1\ntypes 2\nipc_bounds 0.02 8\n"
      "theta 0 5 0 0 0 0 0 0 0 0 0 0\n");
  EXPECT_THROW(PredictorModel::load(bad_index), std::runtime_error);

  std::stringstream unknown(
      "smartbalance-predictor v1\ntypes 2\nipc_bounds 0.02 8\nfrobnicate 1\n");
  EXPECT_THROW(PredictorModel::load(unknown), std::runtime_error);
}

TEST(PredictorIo, MissingFileThrows) {
  EXPECT_THROW(PredictorModel::load_from_file("/no/such/file.model"),
               std::runtime_error);
}

TEST(PredictorIo, LoadedModelDrivesThePolicy) {
  // End-to-end: a model that went through serialization must produce the
  // same balancing decisions as the in-memory one.
  const PredictorModel original = trained_model();
  std::stringstream buf;
  original.save(buf);
  const PredictorModel restored = PredictorModel::load(buf);
  const auto platform = arch::Platform::quad_heterogeneous();
  // Equality of behaviour on every type pair and a grid of observations.
  for (CoreTypeId s = 0; s < 4; ++s) {
    for (CoreTypeId d = 0; d < 4; ++d) {
      if (s == d) continue;
      for (double ipc : {0.2, 0.8, 1.6, 3.2}) {
        ThreadObservation o;
        o.core_type = s;
        o.ipc = ipc;
        o.mr_l1d = 0.04;
        o.imsh = 0.25;
        o.measured = true;
        EXPECT_DOUBLE_EQ(
            original.predict_ipc(o, d, platform.params_of_type(s).freq_mhz,
                                 platform.params_of_type(d).freq_mhz),
            restored.predict_ipc(o, d, platform.params_of_type(s).freq_mhz,
                                 platform.params_of_type(d).freq_mhz));
      }
    }
  }
}

}  // namespace
}  // namespace sb::core
