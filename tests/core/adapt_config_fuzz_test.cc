// Grammar fuzz for AdaptationConfig::parse: ~10k seeded, deterministic
// mutations of valid adaptation specs plus raw garbage (the same harness
// shape as fault_plan_fuzz_test.cc). The contract under test: parse()
// either returns a config or throws std::invalid_argument — never any
// other exception type, never UB (the suite also runs under ASan/UBSan
// in CI). The parse_double/parse_ll wrappers in adapt.cc exist precisely
// so over-range numerics ("rls:1e999") can't leak std::out_of_range.
#include "core/adapt.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <typeinfo>
#include <vector>

namespace sb::core {
namespace {

/// SplitMix64: deterministic mutation stream, independent of libc rand.
class Mutator {
 public:
  explicit Mutator(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  char random_char() {
    // Biased toward grammar-relevant bytes so mutations stay interesting.
    static const char kAlphabet[] =
        "0123456789.:,-+eE \tinfnanbiasrlsdriftresetlambdaclamp\0\x7f";
    return kAlphabet[below(sizeof(kAlphabet) - 1)];
  }

  std::string mutate(std::string s) {
    const int edits = 1 + static_cast<int>(below(4));
    for (int e = 0; e < edits; ++e) {
      switch (below(5)) {
        case 0:  // flip one byte
          if (!s.empty()) s[below(s.size())] = random_char();
          break;
        case 1:  // insert
          s.insert(s.begin() + static_cast<std::ptrdiff_t>(
                                   below(s.size() + 1)),
                   random_char());
          break;
        case 2:  // delete
          if (!s.empty()) s.erase(below(s.size()), 1);
          break;
        case 3:  // truncate
          if (!s.empty()) s.resize(below(s.size()));
          break;
        case 4:  // duplicate a slice onto the end
          if (!s.empty()) {
            const std::size_t at = below(s.size());
            s += s.substr(at, below(s.size() - at) + 1);
          }
          break;
      }
    }
    return s;
  }

 private:
  std::uint64_t state_;
};

const std::vector<std::string>& corpus() {
  static const std::vector<std::string> kCorpus = {
      "bias",
      "rls",
      "bias,rls",
      "bias:0.25",
      "bias:0.25:0.5",
      "rls:0.995",
      "rls:0.995:1:1",
      "rls:1:1000000:0",
      "bias:0.1,rls:0.9:10:1,drift:0.25:8",
      "drift:0.5:4,bias",
      "",
  };
  return kCorpus;
}

/// parse() must return or throw std::invalid_argument; nothing else.
void expect_contract(const std::string& input) {
  try {
    const AdaptationConfig cfg = AdaptationConfig::parse(input);
    // Success: the canonical form must be a fixed point of parse∘to_string
    // (full config equality would spuriously fail when a fuzzed literal has
    // more precision than to_string() prints).
    const std::string canon = cfg.to_string();
    const AdaptationConfig again = AdaptationConfig::parse(canon);
    EXPECT_EQ(again.to_string(), canon)
        << "unstable round-trip for input '" << input << "'";
    EXPECT_EQ(again.enabled(), cfg.enabled());
  } catch (const std::invalid_argument&) {
    // Documented rejection path.
  } catch (const std::exception& e) {
    FAIL() << "parse('" << input << "') leaked " << typeid(e).name() << ": "
           << e.what();
  }
}

TEST(AdaptationConfigFuzz, TenThousandSeededMutations) {
  Mutator m(0xada9f00dULL);
  int parsed = 0, rejected = 0;
  for (int i = 0; i < 10'000; ++i) {
    const std::string& base = corpus()[m.below(corpus().size())];
    const std::string input =
        m.below(10) == 0
            ? std::string(m.below(32), static_cast<char>(m.next() & 0xff))
            : m.mutate(base);
    try {
      (void)AdaptationConfig::parse(input);
      ++parsed;
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
    expect_contract(input);
  }
  // The mutation stream must exercise both sides of the grammar.
  EXPECT_GT(parsed, 100) << "mutations never produced a valid spec";
  EXPECT_GT(rejected, 1000) << "mutations never produced an invalid spec";
}

TEST(AdaptationConfigFuzz, OverRangeNumericsAreInvalidArgumentNotOutOfRange) {
  for (const char* input :
       {"rls:1e999", "rls:1e-999", "bias:1e999", "rls:0.9:1e999",
        "drift:1e999", "drift:0.5:99999999999999999999",
        "drift:0.5:9223372036854775808", "rls:0.9:1:99999999999999999999"}) {
    EXPECT_THROW((void)AdaptationConfig::parse(input), std::invalid_argument)
        << input;
  }
}

TEST(AdaptationConfigFuzz, ValidCorpusStillParses) {
  for (const std::string& input : corpus()) {
    EXPECT_NO_THROW((void)AdaptationConfig::parse(input)) << input;
  }
}

TEST(AdaptationConfigFuzz, GrammarEdgeCases) {
  // Accepted: empty entries between commas are skipped.
  EXPECT_NO_THROW((void)AdaptationConfig::parse(",,bias,,"));
  // Rejected: bad key, bare drift, too many fields, embedded NUL, bad
  // numerics, out-of-range knobs.
  EXPECT_THROW((void)AdaptationConfig::parse("bais"), std::invalid_argument);
  EXPECT_THROW((void)AdaptationConfig::parse("drift"), std::invalid_argument);
  EXPECT_THROW((void)AdaptationConfig::parse("bias:0.5:1:2"),
               std::invalid_argument);
  EXPECT_THROW((void)AdaptationConfig::parse(std::string("bias\0x", 6)),
               std::invalid_argument);
  EXPECT_THROW((void)AdaptationConfig::parse("bias:nan"),
               std::invalid_argument);
  EXPECT_THROW((void)AdaptationConfig::parse("rls:inf"),
               std::invalid_argument);
  EXPECT_THROW((void)AdaptationConfig::parse("bias:-0.1"),
               std::invalid_argument);
  EXPECT_THROW((void)AdaptationConfig::parse("rls:0.49"),
               std::invalid_argument);
  EXPECT_THROW((void)AdaptationConfig::parse("rls:1:1:3"),
               std::invalid_argument);
  EXPECT_THROW((void)AdaptationConfig::parse("drift:0.5:0"),
               std::invalid_argument);
}

}  // namespace
}  // namespace sb::core
