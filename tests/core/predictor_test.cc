#include "core/predictor.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "arch/platform.h"

namespace sb::core {
namespace {

ThreadObservation obs_with_ipc(double ipc, CoreTypeId type) {
  ThreadObservation o;
  o.ipc = ipc;
  o.core_type = type;
  o.measured = true;
  return o;
}

TEST(PredictorModel, ThetaStorageRoundTrip) {
  PredictorModel m(3);
  std::array<double, kNumFeatures> th{};
  th[8] = 0.5;
  th[9] = 0.25;
  m.set_theta(0, 1, th);
  EXPECT_DOUBLE_EQ(m.theta(0, 1)[8], 0.5);
  EXPECT_DOUBLE_EQ(m.theta(1, 0)[8], 0.0);  // untouched pair
  EXPECT_THROW(m.theta(3, 0), std::out_of_range);
  EXPECT_THROW(m.set_theta(0, -1, th), std::out_of_range);
}

TEST(PredictorModel, PredictUsesLinearForm) {
  PredictorModel m(2);
  std::array<double, kNumFeatures> th{};
  th[8] = 0.5;   // ipc_src coefficient
  th[9] = 0.2;   // const
  m.set_theta(0, 1, th);
  const auto o = obs_with_ipc(2.0, 0);
  // 0.5 * 2.0 + 0.2 = 1.2
  EXPECT_NEAR(m.predict_ipc(o, 1, 1000, 500), 1.2, 1e-12);
}

TEST(PredictorModel, SameTypePassthroughMeasurement) {
  PredictorModel m(2);
  const auto o = obs_with_ipc(1.37, 1);
  EXPECT_DOUBLE_EQ(m.predict_ipc(o, 1, 1000, 1000), 1.37);
}

TEST(PredictorModel, ClampsToBounds) {
  PredictorModel m(2);
  m.set_ipc_bounds(0.1, 4.0);
  std::array<double, kNumFeatures> th{};
  th[9] = 100.0;  // absurd constant
  m.set_theta(0, 1, th);
  EXPECT_DOUBLE_EQ(m.predict_ipc(obs_with_ipc(1, 0), 1, 1000, 1000), 4.0);
  th[9] = -100.0;
  m.set_theta(0, 1, th);
  EXPECT_DOUBLE_EQ(m.predict_ipc(obs_with_ipc(1, 0), 1, 1000, 1000), 0.1);
  EXPECT_THROW(m.set_ipc_bounds(0, 1), std::invalid_argument);
  EXPECT_THROW(m.set_ipc_bounds(2, 1), std::invalid_argument);
}

TEST(PredictorModel, PowerInterpolationEq9) {
  PredictorModel m(2);
  m.set_power_coeffs(1, 0.8, 0.1);
  EXPECT_NEAR(m.predict_power(1, 2.0), 1.7, 1e-12);
  // Floor keeps power physically positive.
  m.set_power_coeffs(1, -5.0, 0.0);
  EXPECT_GT(m.predict_power(1, 2.0), 0.0);
  EXPECT_THROW(m.power_coeffs(5), std::out_of_range);
}

TEST(PredictorModel, FrequencyValidation) {
  PredictorModel m(2);
  EXPECT_THROW(m.predict_ipc(obs_with_ipc(1, 0), 1, 0, 1000),
               std::invalid_argument);
  EXPECT_THROW(m.predict_ipc(obs_with_ipc(1, 0), 1, 1000, -1),
               std::invalid_argument);
}

TEST(PredictorModel, ConstructorValidation) {
  EXPECT_THROW(PredictorModel(0), std::invalid_argument);
  EXPECT_THROW(PredictorModel(-2), std::invalid_argument);
}

TEST(PredictorModel, PrintsTable4Layout) {
  const auto platform = arch::Platform::quad_heterogeneous();
  PredictorModel m(platform.num_types());
  std::ostringstream os;
  m.print(os, platform);
  const std::string s = os.str();
  // 4 types -> 12 ordered pairs, each a row.
  EXPECT_NE(s.find("Huge->Big"), std::string::npos);
  EXPECT_NE(s.find("Small->Medium"), std::string::npos);
  EXPECT_EQ(s.find("Huge->Huge"), std::string::npos);
  EXPECT_NE(s.find("ipc_src"), std::string::npos);
}

}  // namespace
}  // namespace sb::core
