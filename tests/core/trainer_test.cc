#include "core/trainer.h"

#include <gtest/gtest.h>

#include "arch/platform.h"
#include "perf/perf_model.h"
#include "power/power_model.h"

namespace sb::core {
namespace {

class TrainerTest : public ::testing::Test {
 protected:
  TrainerTest()
      : platform_(arch::Platform::quad_heterogeneous()),
        perf_(platform_),
        power_(platform_, perf_) {}

  arch::Platform platform_;
  perf::PerfModel perf_;
  power::PowerModel power_;
};

TEST_F(TrainerTest, DefaultTrainingSetCoversWholeLibrary) {
  const auto profiles = PredictorTrainer::default_training_profiles();
  // 10 PARSEC + 4 x264 + 9 IMB benchmarks, 2 phases each.
  EXPECT_EQ(profiles.size(), 2u * 23u);
  const auto grouped = PredictorTrainer::profiles_by_benchmark();
  EXPECT_EQ(grouped.size(), 23u);
}

TEST_F(TrainerTest, TrainingErrorIsFewPercent) {
  // The Fig. 6 claim: ~4.2% perf / ~5% power average error. On the
  // training set itself the regression should land in single digits.
  PredictorTrainer trainer(perf_, power_);
  const auto profiles = PredictorTrainer::default_training_profiles();
  const auto model = trainer.train(profiles);
  const auto report = trainer.evaluate(model, profiles);
  EXPECT_LT(report.avg_perf_err_pct, 10.0);
  EXPECT_LT(report.avg_power_err_pct, 10.0);
  EXPECT_GT(report.avg_perf_err_pct, 0.0);
  EXPECT_EQ(report.per_profile.size(), profiles.size());
}

TEST_F(TrainerTest, PowerCoefficientsHavePositiveSlope) {
  // Eq. 9's premise: power is (increasing) linear in IPC.
  PredictorTrainer trainer(perf_, power_);
  const auto model =
      trainer.train(PredictorTrainer::default_training_profiles());
  for (CoreTypeId t = 0; t < platform_.num_types(); ++t) {
    const auto [a1, a0] = model.power_coeffs(t);
    EXPECT_GT(a1, 0.0) << "type " << t;
    EXPECT_GT(a0, 0.0) << "leakage+base floor, type " << t;
  }
}

TEST_F(TrainerTest, PredictsBetterThanNaiveIpcCopy) {
  PredictorTrainer trainer(perf_, power_);
  const auto profiles = PredictorTrainer::default_training_profiles();
  const auto model = trainer.train(profiles);
  Rng rng(77);
  double model_err = 0, naive_err = 0;
  int n = 0;
  for (const auto& p : profiles) {
    for (CoreTypeId s = 0; s < platform_.num_types(); ++s) {
      const auto o = trainer.synthesize_observation(p, s, rng);
      for (CoreTypeId d = 0; d < platform_.num_types(); ++d) {
        if (s == d) continue;
        const double truth = perf_.evaluate_on_type(p, d).ipc;
        const double pred = model.predict_ipc(
            o, d, platform_.params_of_type(s).freq_mhz,
            platform_.params_of_type(d).freq_mhz);
        model_err += std::abs(pred - truth) / truth;
        naive_err += std::abs(o.ipc - truth) / truth;  // "same IPC" baseline
        ++n;
      }
    }
  }
  EXPECT_LT(model_err / n, 0.5 * naive_err / n)
      << "regression must beat assuming IPC carries over unchanged";
}

TEST_F(TrainerTest, LeaveOneOutErrorModest) {
  // Restrict to a subset to keep the test fast; LOO error should stay in
  // the same ballpark as Fig. 6 (single-digit percent, allow up to 15%).
  PredictorTrainer::Config cfg;
  cfg.replicas = 4;
  PredictorTrainer trainer(perf_, power_, cfg);
  const auto grouped = PredictorTrainer::profiles_by_benchmark();
  const auto report = trainer.leave_one_out(grouped);
  EXPECT_EQ(report.per_profile.size(), grouped.size());
  EXPECT_LT(report.avg_perf_err_pct, 15.0);
  EXPECT_LT(report.avg_power_err_pct, 15.0);
}

TEST_F(TrainerTest, SynthesizedObservationMatchesGroundTruthRates) {
  PredictorTrainer::Config cfg;
  cfg.counter_noise = 0.0;
  PredictorTrainer trainer(perf_, power_, cfg);
  Rng rng(5);
  const auto p = PredictorTrainer::default_training_profiles()[0];
  const auto o = trainer.synthesize_observation(p, 1, rng);
  const auto bd = perf_.evaluate_on_type(p, 1);
  EXPECT_NEAR(o.ipc, bd.ipc, 0.01);
  EXPECT_NEAR(o.mr_l1d, bd.mr_l1d, 1e-3);
  EXPECT_NEAR(o.imsh, p.mem_share, 1e-3);
  EXPECT_TRUE(o.measured);
  EXPECT_EQ(o.core_type, 1);
}

TEST_F(TrainerTest, DeterministicForSameSeed) {
  PredictorTrainer trainer(perf_, power_);
  const auto profiles = PredictorTrainer::default_training_profiles();
  const auto m1 = trainer.train(profiles);
  const auto m2 = trainer.train(profiles);
  EXPECT_EQ(m1.theta(0, 1), m2.theta(0, 1));
  EXPECT_EQ(m1.power_coeffs(2), m2.power_coeffs(2));
}

TEST_F(TrainerTest, FrequencyGridTrainingKeepsCrossOppErrorBounded) {
  // Train with the DVFS grid, then predict from a down-clocked source to a
  // down-clocked destination and compare against the model's truth at that
  // operating point. Without FR variation in training this error explodes.
  PredictorTrainer::Config cfg;
  cfg.replicas = 4;
  cfg.training_freq_ratios = {0.4, 0.7, 1.0};
  PredictorTrainer trainer(perf_, power_, cfg);
  const auto model =
      trainer.train(PredictorTrainer::default_training_profiles());

  Rng rng(31);
  double err = 0;
  int n = 0;
  for (const auto& p : PredictorTrainer::default_training_profiles()) {
    const double fs = platform_.params_of_type(0).freq_mhz * 0.7;
    const auto o = trainer.synthesize_observation(p, 0, rng, 80.0, fs);
    for (CoreTypeId d = 1; d < platform_.num_types(); ++d) {
      const double fd = platform_.params_of_type(d).freq_mhz * 0.4;
      const double truth = perf_.evaluate_on_type(p, d, 80.0, 1.0, fd).ipc;
      const double pred = model.predict_ipc(o, d, fs, fd);
      err += std::abs(pred - truth) / truth;
      ++n;
    }
  }
  EXPECT_LT(100.0 * err / n, 20.0) << "cross-OPP prediction error %";
}

TEST_F(TrainerTest, RejectsEmptyInput) {
  PredictorTrainer trainer(perf_, power_);
  EXPECT_THROW(trainer.train({}), std::invalid_argument);
  PredictorTrainer::Config bad;
  bad.replicas = 0;
  EXPECT_THROW(PredictorTrainer(perf_, power_, bad), std::invalid_argument);
}

}  // namespace
}  // namespace sb::core
