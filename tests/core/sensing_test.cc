#include "core/sensing.h"

#include <gtest/gtest.h>

#include "arch/platform.h"
#include "common/stats.h"
#include "perf/perf_model.h"

namespace sb::core {
namespace {

os::EpochSample make_sample(ThreadId tid, CoreId core, double ipc,
                            TimeNs runtime = milliseconds(50)) {
  os::EpochSample s;
  s.tid = tid;
  s.core = core;
  s.runtime = runtime;
  s.util = 0.8;
  s.warm = true;
  auto& c = s.counters;
  c.inst_total = 10'000'000;
  c.cy_busy = static_cast<std::uint64_t>(5e6 / ipc);
  c.cy_idle = static_cast<std::uint64_t>(1e7 / ipc) - c.cy_busy;
  c.inst_mem = 2'500'000;
  c.inst_branch = 1'500'000;
  c.branch_mispred = 45'000;
  c.l1i_access = 10'000'000;
  c.l1i_miss = 50'000;
  c.l1d_access = 2'500'000;
  c.l1d_miss = 100'000;
  c.itlb_access = 10'000'000;
  c.itlb_miss = 1'000;
  c.dtlb_access = 2'500'000;
  c.dtlb_miss = 5'000;
  s.energy_j = 0.02;
  return s;
}

class SensingTest : public ::testing::Test {
 protected:
  SensingTest() : platform_(arch::Platform::quad_heterogeneous()) {}
  arch::Platform platform_;
};

TEST_F(SensingTest, NoiselessReductionMatchesCounters) {
  SensingSubsystem::Config cfg;
  cfg.counter_noise_sigma = 0;
  cfg.energy_noise_sigma = 0;
  cfg.smoothing = 0;
  SensingSubsystem sensing(platform_, cfg, Rng(1));
  const auto obs = sensing.observe({make_sample(0, 1, 2.0)});
  ASSERT_EQ(obs.size(), 1u);
  const auto& o = obs[0];
  EXPECT_TRUE(o.measured);
  EXPECT_EQ(o.core, 1);
  EXPECT_EQ(o.core_type, platform_.type_of(1));
  EXPECT_NEAR(o.ipc, 2.0, 0.01);
  EXPECT_NEAR(o.imsh, 0.25, 1e-9);
  EXPECT_NEAR(o.ibsh, 0.15, 1e-9);
  EXPECT_NEAR(o.mr_branch, 0.03, 1e-9);
  EXPECT_NEAR(o.mr_l1d, 0.04, 1e-9);
  // IPS = IPC × F(Big=1.5 GHz)
  EXPECT_NEAR(o.ips, 2.0 * 1.5e9, 2e7);
  // Power = energy / runtime = 0.02 J / 50 ms = 0.4 W
  EXPECT_NEAR(o.power_w, 0.4, 1e-6);
}

TEST_F(SensingTest, NoiseIsBoundedAndUnbiased) {
  SensingSubsystem::Config cfg;
  cfg.counter_noise_sigma = 0.01;
  cfg.smoothing = 0;
  SensingSubsystem sensing(platform_, cfg, Rng(7));
  RunningStats ipc;
  for (int i = 0; i < 500; ++i) {
    // Distinct tid each time to avoid smoothing/caching interference.
    const auto obs = sensing.observe({make_sample(i, 1, 2.0)});
    ipc.add(obs[0].ipc);
  }
  EXPECT_NEAR(ipc.mean(), 2.0, 0.01);
  EXPECT_GT(ipc.stddev(), 0.005);
  EXPECT_LT(ipc.stddev(), 0.1);
}

TEST_F(SensingTest, ShortRunIsNotMeasuredButCachedValueServes) {
  SensingSubsystem::Config cfg;
  cfg.counter_noise_sigma = 0;
  cfg.energy_noise_sigma = 0;
  cfg.smoothing = 0;
  SensingSubsystem sensing(platform_, cfg, Rng(1));
  // Epoch 1: good measurement.
  auto obs = sensing.observe({make_sample(3, 2, 1.5)});
  EXPECT_TRUE(obs[0].measured);
  // Epoch 2: thread slept the whole epoch (tiny runtime) — reuse cache.
  auto stale = make_sample(3, 2, 1.5, microseconds(10));
  stale.counters = perf::HpcCounters{};
  stale.util = 0.05;
  obs = sensing.observe({stale});
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_NEAR(obs[0].ipc, 1.5, 0.01) << "cached characterization reused";
  EXPECT_NEAR(obs[0].util, 0.05, 1e-9) << "utilization refreshed";
}

TEST_F(SensingTest, NeverSeenThreadYieldsUnmeasuredObservation) {
  SensingSubsystem sensing(platform_, Rng(1));
  auto s = make_sample(9, 0, 1.0, 0);
  s.counters = perf::HpcCounters{};
  const auto obs = sensing.observe({s});
  EXPECT_FALSE(obs[0].measured);
  EXPECT_EQ(obs[0].instructions, 0u);
}

TEST_F(SensingTest, ColdSampleAfterMigrationUsesCache) {
  SensingSubsystem::Config cfg;
  cfg.counter_noise_sigma = 0;
  cfg.energy_noise_sigma = 0;
  cfg.smoothing = 0;
  SensingSubsystem sensing(platform_, cfg, Rng(1));
  sensing.observe({make_sample(1, 1, 2.0)});
  // Thread migrated to core 3 and is still cold: counters say IPC 0.3.
  auto cold = make_sample(1, 3, 0.3);
  cold.warm = false;
  const auto obs = sensing.observe({cold});
  EXPECT_NEAR(obs[0].ipc, 2.0, 0.01)
      << "warmup-contaminated sample must not replace the characterization";
  EXPECT_EQ(obs[0].core, 1) << "characterization still refers to the old core";
}

TEST_F(SensingTest, SmoothingBlendsSameTypeMeasurements) {
  SensingSubsystem::Config cfg;
  cfg.counter_noise_sigma = 0;
  cfg.energy_noise_sigma = 0;
  cfg.smoothing = 0.5;
  SensingSubsystem sensing(platform_, cfg, Rng(1));
  sensing.observe({make_sample(1, 1, 2.0)});
  const auto obs = sensing.observe({make_sample(1, 1, 1.0)});
  EXPECT_NEAR(obs[0].ipc, 1.5, 0.02) << "0.5·prev + 0.5·fresh";
}

TEST_F(SensingTest, SmoothingResetsOnCoreTypeChange) {
  SensingSubsystem::Config cfg;
  cfg.counter_noise_sigma = 0;
  cfg.energy_noise_sigma = 0;
  cfg.smoothing = 0.9;
  SensingSubsystem sensing(platform_, cfg, Rng(1));
  sensing.observe({make_sample(1, 0, 4.0)});  // on Huge
  const auto obs = sensing.observe({make_sample(1, 3, 0.8)});  // now on Small
  EXPECT_NEAR(obs[0].ipc, 0.8, 0.02)
      << "IPC on a different core type must not be blended";
}

TEST_F(SensingTest, EveryThreadYieldsExactlyOneObservation) {
  SensingSubsystem sensing(platform_, Rng(1));
  const auto obs = sensing.observe(
      {make_sample(0, 0, 1.0), make_sample(1, 1, 2.0), make_sample(2, 2, 0.5)});
  EXPECT_EQ(obs.size(), 3u);
  EXPECT_EQ(obs[0].tid, 0);
  EXPECT_EQ(obs[2].tid, 2);
}

}  // namespace
}  // namespace sb::core
