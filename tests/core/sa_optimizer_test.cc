#include "core/sa_optimizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"
#include "core/objective.h"

namespace sb::core {
namespace {

/// Random instance where thread i's GIPS/power on core j are drawn so that
/// matching matters.
struct Instance {
  Matrix s, p;
  std::vector<CoreId> initial;
};

Instance random_instance(std::size_t m, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Instance inst{Matrix(m, n), Matrix(m, n), {}};
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      inst.s.at(i, j) = rng.uniform(0.1, 4.0);
      inst.p.at(i, j) = rng.uniform(0.05, 3.0);
    }
    inst.initial.push_back(static_cast<CoreId>(rng.randi(0, static_cast<std::int64_t>(n))));
  }
  return inst;
}

TEST(EvaluateAllocation, MatchesHandComputation) {
  // 2 threads, 2 cores; both on core 0.
  Matrix s = {{2.0, 1.0}, {4.0, 0.5}};
  Matrix p = {{1.0, 0.2}, {1.0, 0.3}};
  EnergyEfficiencyObjective obj;
  // core0: (2+4)/(1+1)=3 ; core1 idle: 0.
  EXPECT_DOUBLE_EQ(evaluate_allocation(s, p, obj, {0, 0}), 3.0);
  // split: 2/1 + 0.5/0.3
  EXPECT_NEAR(evaluate_allocation(s, p, obj, {0, 1}), 2.0 + 0.5 / 0.3, 1e-12);
}

TEST(EvaluateAllocation, ShapeChecked) {
  EnergyEfficiencyObjective obj;
  EXPECT_THROW(evaluate_allocation(Matrix(2, 2), Matrix(2, 3), obj, {0, 0}),
               std::invalid_argument);
  EXPECT_THROW(evaluate_allocation(Matrix(2, 2), Matrix(2, 2), obj, {0}),
               std::invalid_argument);
}

TEST(Objectives, CoreTermSemantics) {
  auto sums = [](double g, double w, int n) {
    CoreSums s;
    s.gips = g;
    s.watts = w;
    s.load = n;
    s.nthreads = n;
    return s;
  };
  EnergyEfficiencyObjective ee;
  EXPECT_DOUBLE_EQ(ee.core_term(sums(4.0, 2.0, 3), 0), 2.0);
  EXPECT_DOUBLE_EQ(ee.core_term(sums(4.0, 2.0, 0), 0), 0.0);  // idle core
  EXPECT_DOUBLE_EQ(ee.core_term(sums(4.0, 0.0, 2), 0), 0.0);  // degenerate

  ThroughputObjective tp;
  EXPECT_DOUBLE_EQ(tp.core_term(sums(4.0, 99.0, 2), 0), 2.0);  // time-shared
  EXPECT_DOUBLE_EQ(tp.core_term(sums(4.0, 99.0, 0), 0), 0.0);

  EdpObjective edp;
  EXPECT_DOUBLE_EQ(edp.core_term(sums(4.0, 2.0, 2), 0), 4.0);  // (4/2)²/(2/2)
  EXPECT_EQ(ee.name(), "ips_per_watt");
}

TEST(Objectives, Eq11PerCoreWeights) {
  // ω = {1, 3}: the weighted core contributes 3× its ratio (Eq. 11's "can
  // be tuned to give preference to certain cores").
  EnergyEfficiencyObjective weighted(std::vector<double>{1.0, 3.0});
  CoreSums s;
  s.gips = 4.0;
  s.watts = 2.0;
  s.nthreads = 1;
  EXPECT_DOUBLE_EQ(weighted.core_term(s, 0), 2.0);
  EXPECT_DOUBLE_EQ(weighted.core_term(s, 1), 6.0);
  EXPECT_DOUBLE_EQ(weighted.core_term(s, 7), 2.0);  // beyond vector: ω = 1
}

TEST(SaOptimizer, ImprovesOrMatchesInitial) {
  const auto inst = random_instance(8, 4, 11);
  EnergyEfficiencyObjective obj;
  SaOptimizer opt;
  const auto r = opt.optimize(inst.s, inst.p, obj, inst.initial);
  EXPECT_GE(r.objective, r.initial_objective);
  EXPECT_EQ(r.allocation.size(), 8u);
  EXPECT_NEAR(evaluate_allocation(inst.s, inst.p, obj, r.allocation),
              r.objective, 1e-9)
      << "incremental objective must agree with the reference evaluation";
}

class SaVsExhaustive
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SaVsExhaustive, NearOptimalOnSmallInstances) {
  const auto [m, n, seed] = GetParam();
  const auto inst = random_instance(static_cast<std::size_t>(m),
                                    static_cast<std::size_t>(n),
                                    static_cast<std::uint64_t>(seed));
  EnergyEfficiencyObjective obj;
  const auto best = exhaustive_optimum(inst.s, inst.p, obj);
  SaConfig cfg;
  cfg.max_iterations = 3000;
  cfg.seed = 42;
  const auto r = SaOptimizer(cfg).optimize(inst.s, inst.p, obj, inst.initial);
  EXPECT_GE(r.objective, 0.92 * best.objective)
      << "m=" << m << " n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, SaVsExhaustive,
    ::testing::Values(std::make_tuple(4, 2, 1), std::make_tuple(6, 3, 2),
                      std::make_tuple(8, 4, 3), std::make_tuple(8, 4, 4),
                      std::make_tuple(10, 3, 5), std::make_tuple(5, 4, 6),
                      std::make_tuple(9, 2, 7), std::make_tuple(7, 4, 8)));

TEST(SaOptimizer, RespectsAffinity) {
  const auto inst = random_instance(6, 3, 21);
  EnergyEfficiencyObjective obj;
  std::vector<std::bitset<kMaxCores>> affinity(6);
  for (auto& a : affinity) a.set();  // all allowed...
  affinity[2].reset();
  affinity[2].set(1);  // ...except thread 2 pinned to core 1
  std::vector<CoreId> initial = inst.initial;
  initial[2] = 1;
  const auto r =
      SaOptimizer().optimize(inst.s, inst.p, obj, initial, &affinity);
  EXPECT_EQ(r.allocation[2], 1);
}

TEST(SaOptimizer, DemandWeightingShrinksSleepyThreads) {
  // Thread 0 is CPU-bound (unbounded demand); thread 1 demands only
  // 0.05 GIPS. With demand weighting the busy thread dominates the score.
  Matrix s = {{2.0, 0.5}, {4.0, 0.1}};
  Matrix p = {{0.5, 0.1}, {2.0, 0.2}};
  EnergyEfficiencyObjective obj;
  std::vector<double> demand = {-1.0, 0.05};
  SaConfig cfg;
  cfg.max_iterations = 500;
  const auto r =
      SaOptimizer(cfg).optimize(s, p, obj, {0, 0}, nullptr, &demand);
  // Busy thread alone on core 0 yields 2/0.5 = 4; the sleepy thread's
  // contribution wherever it lands is efficiency-neutral-ish.
  EXPECT_GT(r.objective, 3.5);
}

TEST(SaOptimizer, DemandSaturatesOnSlowCores) {
  // A thread demanding 1.0 GIPS on a core that can only do 0.5 GIPS
  // saturates: it contributes the core's full capability, not its demand.
  Matrix s = {{2.0, 0.5}};
  Matrix p = {{1.0, 0.1}};
  EnergyEfficiencyObjective obj;
  std::vector<double> demand = {1.0};
  // Forced onto core 1 (only option via affinity).
  std::vector<std::bitset<kMaxCores>> aff(1);
  aff[0].set(1);
  SaConfig cfg;
  cfg.max_iterations = 50;
  const auto r = SaOptimizer(cfg).optimize(s, p, obj, {1}, &aff, &demand);
  // occupancy = min(1, 1.0/0.5) = 1 → term = 0.5/0.1 = 5.
  EXPECT_NEAR(r.objective, 5.0, 1e-9);
}

TEST(SaOptimizer, DeterministicPerSeed) {
  const auto inst = random_instance(10, 4, 33);
  EnergyEfficiencyObjective obj;
  SaConfig cfg;
  cfg.seed = 7;
  const auto a = SaOptimizer(cfg).optimize(inst.s, inst.p, obj, inst.initial);
  const auto b = SaOptimizer(cfg).optimize(inst.s, inst.p, obj, inst.initial);
  EXPECT_EQ(a.allocation, b.allocation);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

TEST(SaOptimizer, FixedVsFloatAcceptanceBothConverge) {
  const auto inst = random_instance(8, 4, 55);
  EnergyEfficiencyObjective obj;
  const auto best = exhaustive_optimum(inst.s, inst.p, obj);
  for (bool fixed : {true, false}) {
    SaConfig cfg;
    cfg.max_iterations = 6000;
    cfg.fixed_point_acceptance = fixed;
    const auto r = SaOptimizer(cfg).optimize(inst.s, inst.p, obj, inst.initial);
    EXPECT_GE(r.objective, 0.88 * best.objective) << "fixed=" << fixed;
  }
}

TEST(SaOptimizer, AutoIterationsScaleAndSaturate) {
  EXPECT_GT(sa_auto_iterations(8, 16), sa_auto_iterations(2, 4));
  EXPECT_EQ(sa_auto_iterations(128, 256), 60000);  // capped (Fig. 8a)
  EXPECT_GE(sa_auto_iterations(1, 1), 100);
}

TEST(SaOptimizer, ValidatesInput) {
  EnergyEfficiencyObjective obj;
  SaOptimizer opt;
  EXPECT_THROW(opt.optimize(Matrix(), Matrix(), obj, {}),
               std::invalid_argument);
  EXPECT_THROW(
      opt.optimize(Matrix(2, 2), Matrix(2, 2), obj, {0, 5}),
      std::invalid_argument);
  EXPECT_THROW(opt.optimize(Matrix(2, 2), Matrix(2, 3), obj, {0, 0}),
               std::invalid_argument);
  std::vector<double> utils = {1.0};
  EXPECT_THROW(
      opt.optimize(Matrix(2, 2), Matrix(2, 2), obj, {0, 0}, nullptr, &utils),
      std::invalid_argument);
}

TEST(ExhaustiveOptimum, RefusesHugeInstances) {
  EnergyEfficiencyObjective obj;
  EXPECT_THROW(exhaustive_optimum(Matrix(30, 8), Matrix(30, 8), obj),
               std::invalid_argument);
}

TEST(ExhaustiveOptimum, FindsKnownOptimum) {
  // Construct an instance with an obvious perfect matching: thread i is
  // outstanding on core i and terrible elsewhere.
  const std::size_t n = 3;
  Matrix s(n, n, 0.1), p(n, n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    s.at(i, i) = 5.0;
    p.at(i, i) = 0.5;
  }
  EnergyEfficiencyObjective obj;
  const auto best = exhaustive_optimum(s, p, obj);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(best.allocation[i], static_cast<CoreId>(i));
  }
  EXPECT_NEAR(best.objective, 3 * 10.0, 1e-9);
}

TEST(SaOptimizer, ScratchReuseIsDeterministic) {
  // One optimizer instance, repeated calls: the scratch arena carries over
  // but results must be independent of prior calls — including calls on a
  // *different* (larger) instance in between, which grows every buffer.
  const auto inst = random_instance(8, 4, 77);
  const auto big = random_instance(24, 8, 78);
  EnergyEfficiencyObjective obj;
  SaConfig cfg;
  cfg.seed = 9;
  SaOptimizer reused(cfg);
  const auto first = reused.optimize(inst.s, inst.p, obj, inst.initial);
  (void)reused.optimize(big.s, big.p, obj, big.initial);
  const auto again = reused.optimize(inst.s, inst.p, obj, inst.initial);
  EXPECT_EQ(again.allocation, first.allocation);
  EXPECT_DOUBLE_EQ(again.objective, first.objective);

  const auto fresh = SaOptimizer(cfg).optimize(inst.s, inst.p, obj,
                                               inst.initial);
  EXPECT_EQ(fresh.allocation, first.allocation);
  EXPECT_DOUBLE_EQ(fresh.objective, first.objective);
}

TEST(SaOptimizer, CustomObjectiveMatchesDevirtualizedBuiltin) {
  // A user-defined objective (kind() == kCustom) computing the same
  // per-core term as the built-in EE must reproduce the devirtualized
  // kernel's trajectory exactly: same RNG draws, same FP expression order,
  // so allocation and objective are bit-identical.
  class CustomEe : public BalanceObjective {
   public:
    double core_term(const CoreSums& s, CoreId /*core*/) const override {
      if (s.nthreads == 0 || s.watts <= 0) return 0.0;
      return 1.0 * s.gips / s.watts;
    }
    std::string name() const override { return "custom_ee"; }
  };
  const auto inst = random_instance(10, 4, 91);
  SaConfig cfg;
  cfg.seed = 13;
  cfg.max_iterations = 2000;
  EnergyEfficiencyObjective builtin;
  CustomEe custom;
  ASSERT_EQ(custom.kind(), ObjectiveKind::kCustom);
  const auto a = SaOptimizer(cfg).optimize(inst.s, inst.p, builtin,
                                           inst.initial);
  const auto b = SaOptimizer(cfg).optimize(inst.s, inst.p, custom,
                                           inst.initial);
  EXPECT_EQ(b.allocation, a.allocation);
  EXPECT_DOUBLE_EQ(b.objective, a.objective);
  EXPECT_EQ(b.accepted_worse, a.accepted_worse);
  EXPECT_EQ(b.improved, a.improved);
}

TEST(ExhaustiveOptimum, GrayCodeMatchesBruteForce) {
  // The Gray-code walk evaluates every allocation via single-move deltas;
  // cross-check the reported optimum against a naive full enumeration with
  // independent full recomputes.
  const std::size_t m = 5, n = 3;  // 3^5 = 243 allocations
  const auto inst = random_instance(m, n, 101);
  EnergyEfficiencyObjective obj;

  std::vector<CoreId> alloc(m, 0);
  double best = -1.0;
  std::vector<CoreId> best_alloc;
  for (;;) {
    const double v = evaluate_allocation(inst.s, inst.p, obj, alloc);
    if (v > best) {
      best = v;
      best_alloc = alloc;
    }
    std::size_t i = 0;
    while (i < m && alloc[i] == static_cast<CoreId>(n - 1)) alloc[i++] = 0;
    if (i == m) break;
    ++alloc[i];
  }

  const auto gray = exhaustive_optimum(inst.s, inst.p, obj);
  EXPECT_NEAR(gray.objective, best, 1e-9 * best);
  EXPECT_NEAR(evaluate_allocation(inst.s, inst.p, obj, gray.allocation),
              best, 1e-9 * best)
      << "reported allocation must actually achieve the optimum";
}

TEST(SaOptimizer, DriftResyncKeepsObjectiveConsistent) {
  // A long anneal crosses the periodic resync boundary; the final reported
  // objective must still match a reference evaluation of the returned
  // allocation, and the resync count is surfaced in the result.
  const auto inst = random_instance(16, 6, 111);
  EnergyEfficiencyObjective obj;
  SaConfig cfg;
  cfg.seed = 5;
  cfg.max_iterations = 60000;
  const auto r = SaOptimizer(cfg).optimize(inst.s, inst.p, obj, inst.initial);
  EXPECT_GE(r.resyncs, 0);
  EXPECT_NEAR(evaluate_allocation(inst.s, inst.p, obj, r.allocation),
              r.objective, 1e-9 * std::max(1.0, r.objective));
}

TEST(SaOptimizer, HostTimeRecorded) {
  const auto inst = random_instance(8, 4, 99);
  EnergyEfficiencyObjective obj;
  const auto r = SaOptimizer().optimize(inst.s, inst.p, obj, inst.initial);
  EXPECT_GT(r.host_ns, 0);
  EXPECT_GT(r.iterations, 0);
}

}  // namespace
}  // namespace sb::core
