// Prediction-cache behavior: hit/miss accounting, staleness eviction, and
// — most importantly — that the cache's outputs are bit-identical to the
// uncached predict path (a hit serves exactly the rows a recompute would
// produce within the quantization cell, and a disabled cache leaves
// build_characterization untouched).
#include "core/prediction_cache.h"

#include <gtest/gtest.h>

#include "arch/platform.h"
#include "core/char_matrix.h"
#include "core/trainer.h"
#include "perf/perf_model.h"
#include "power/power_model.h"

namespace sb::core {
namespace {

class PredictionCacheTest : public ::testing::Test {
 protected:
  PredictionCacheTest()
      : platform_(arch::Platform::quad_heterogeneous()),
        perf_(platform_),
        power_(platform_, perf_),
        trainer_(perf_, power_),
        model_(trainer_.train(PredictorTrainer::default_training_profiles())) {}

  ThreadObservation observation_on(CoreId core, std::uint64_t seed = 3,
                                   ThreadId tid = 1) {
    Rng rng(seed);
    auto o = trainer_.synthesize_observation(
        PredictorTrainer::default_training_profiles()[5],
        platform_.type_of(core), rng);
    o.tid = tid;
    o.core = core;
    return o;
  }

  arch::Platform platform_;
  perf::PerfModel perf_;
  power::PowerModel power_;
  PredictorTrainer trainer_;
  PredictorModel model_;
};

TEST_F(PredictionCacheTest, FirstEpochMissesThenHits) {
  PredictionCacheConfig cfg;
  cfg.enabled = true;
  PredictionCache cache(cfg);
  const auto o = observation_on(1);

  cache.advance_epoch();
  const auto first = build_characterization({o}, model_, platform_, nullptr,
                                            &cache);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);

  cache.advance_epoch();
  const auto second = build_characterization({o}, model_, platform_, nullptr,
                                             &cache);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // A hit serves exactly the stored rows.
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(second.s.at(0, j), first.s.at(0, j)) << j;
    EXPECT_DOUBLE_EQ(second.p.at(0, j), first.p.at(0, j)) << j;
  }
}

TEST_F(PredictionCacheTest, KeyChangeMisses) {
  PredictionCacheConfig cfg;
  cfg.enabled = true;
  PredictionCache cache(cfg);
  auto o = observation_on(1);
  cache.advance_epoch();
  (void)build_characterization({o}, model_, platform_, nullptr, &cache);

  // Move the IPC by far more than a quantization cell: the key changes.
  o.ipc *= 1.5;
  cache.advance_epoch();
  (void)build_characterization({o}, model_, platform_, nullptr, &cache);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST_F(PredictionCacheTest, StalenessBoundEvicts) {
  PredictionCacheConfig cfg;
  cfg.enabled = true;
  cfg.max_stale_epochs = 2;
  PredictionCache cache(cfg);
  const auto o = observation_on(2);

  cache.advance_epoch();
  (void)build_characterization({o}, model_, platform_, nullptr, &cache);
  cache.advance_epoch();
  (void)build_characterization({o}, model_, platform_, nullptr, &cache);
  EXPECT_EQ(cache.stats().hits, 1u);

  // Age the entry past the bound without lookups in between.
  cache.advance_epoch();
  cache.advance_epoch();
  const auto key = cache.make_key(o, 0);
  (void)key;
  (void)build_characterization({o}, model_, platform_, nullptr, &cache);
  EXPECT_EQ(cache.stats().stale_evictions + cache.stats().misses, 2u)
      << "an over-age row must not be served";
  EXPECT_EQ(cache.stats().hits, 1u);

  // Entries older than the bound are pruned on epoch advance.
  for (int e = 0; e < cfg.max_stale_epochs + 2; ++e) cache.advance_epoch();
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(PredictionCacheTest, DisabledCacheIsBitIdentical) {
  // nullptr cache and a populated cache must produce identical matrices on
  // the store path (first epoch) — the cache only changes *when* rows are
  // recomputed, never their values.
  const std::vector<ThreadObservation> obs = {observation_on(0, 3, 1),
                                              observation_on(1, 4, 2),
                                              observation_on(3, 5, 3)};
  const auto uncached = build_characterization(obs, model_, platform_);

  PredictionCacheConfig cfg;
  cfg.enabled = true;
  PredictionCache cache(cfg);
  cache.advance_epoch();
  const auto cached = build_characterization(obs, model_, platform_, nullptr,
                                             &cache);
  ASSERT_EQ(cached.num_threads(), uncached.num_threads());
  for (std::size_t i = 0; i < obs.size(); ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(cached.s.at(i, j), uncached.s.at(i, j));
      EXPECT_DOUBLE_EQ(cached.p.at(i, j), uncached.p.at(i, j));
    }
  }
}

TEST_F(PredictionCacheTest, ContextSignatureInvalidatesAcrossOpps) {
  // Same observation under different operating points must not share rows.
  PredictionCacheConfig cfg;
  cfg.enabled = true;
  PredictionCache cache(cfg);
  const auto o = observation_on(1);

  std::vector<arch::OperatingPoint> nominal;
  for (CoreId c = 0; c < 4; ++c) {
    const auto& p = platform_.params_of(c);
    nominal.push_back({p.freq_mhz, p.vdd});
  }
  auto scaled = nominal;
  scaled[1] = {platform_.params_of(1).freq_mhz * 0.5,
               platform_.params_of(1).vdd * 0.8};

  cache.advance_epoch();
  const auto a = build_characterization({o}, model_, platform_, &nominal,
                                        &cache);
  cache.advance_epoch();
  const auto b = build_characterization({o}, model_, platform_, &scaled,
                                        &cache);
  EXPECT_EQ(cache.stats().hits, 0u) << "OPP change must miss, not hit";
  EXPECT_NE(a.s.at(0, 1), b.s.at(0, 1));
}

TEST_F(PredictionCacheTest, UnmeasuredThreadsAreCachedToo) {
  ThreadObservation o;
  o.tid = 9;
  o.core = 2;
  o.core_type = 2;
  o.measured = false;
  o.instructions = 0;
  PredictionCacheConfig cfg;
  cfg.enabled = true;
  PredictionCache cache(cfg);
  cache.advance_epoch();
  const auto first = build_characterization({o}, model_, platform_, nullptr,
                                            &cache);
  cache.advance_epoch();
  const auto second = build_characterization({o}, model_, platform_, nullptr,
                                             &cache);
  EXPECT_EQ(cache.stats().hits, 1u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(second.s.at(0, j), first.s.at(0, j));
  }
}

TEST_F(PredictionCacheTest, QuantizationAbsorbsTinyNoise) {
  PredictionCacheConfig cfg;
  cfg.enabled = true;
  PredictionCache cache(cfg);
  auto o = observation_on(1);
  cache.advance_epoch();
  (void)build_characterization({o}, model_, platform_, nullptr, &cache);

  // A perturbation far below half a quantization cell keeps the key.
  o.ipc += 1e-5;
  cache.advance_epoch();
  (void)build_characterization({o}, model_, platform_, nullptr, &cache);
  EXPECT_EQ(cache.stats().hits, 1u);
}

}  // namespace
}  // namespace sb::core
