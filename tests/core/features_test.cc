#include "core/features.h"

#include <gtest/gtest.h>

namespace sb::core {
namespace {

TEST(Features, NamesMatchTable4Columns) {
  const auto& names = feature_names();
  ASSERT_EQ(names.size(), kNumFeatures);
  EXPECT_EQ(names[0], "FR");
  EXPECT_EQ(names[1], "mr_$i");
  EXPECT_EQ(names[2], "mr_$d");
  EXPECT_EQ(names[3], "I_msh");
  EXPECT_EQ(names[4], "I_bsh");
  EXPECT_EQ(names[5], "mr_b");
  EXPECT_EQ(names[6], "mr_itlb");
  EXPECT_EQ(names[7], "mr_dtlb");
  EXPECT_EQ(names[8], "ipc_src");
  EXPECT_EQ(names[9], "const");
}

TEST(Features, VectorLayout) {
  ThreadObservation o;
  o.mr_l1i = 0.01;
  o.mr_l1d = 0.05;
  o.imsh = 0.3;
  o.ibsh = 0.12;
  o.mr_branch = 0.04;
  o.mr_itlb = 0.001;
  o.mr_dtlb = 0.002;
  o.ipc = 1.7;
  const auto x = make_features(o, 2.0);
  EXPECT_DOUBLE_EQ(x[0], 2.0);    // FR
  EXPECT_DOUBLE_EQ(x[1], 0.01);   // mr_$i
  EXPECT_DOUBLE_EQ(x[2], 0.05);   // mr_$d
  EXPECT_DOUBLE_EQ(x[3], 0.3);    // I_msh
  EXPECT_DOUBLE_EQ(x[4], 0.12);   // I_bsh
  EXPECT_DOUBLE_EQ(x[5], 0.04);   // mr_b
  EXPECT_DOUBLE_EQ(x[6], 0.001);  // mr_itlb
  EXPECT_DOUBLE_EQ(x[7], 0.002);  // mr_dtlb
  EXPECT_DOUBLE_EQ(x[8], 1.7);    // ipc_src
  EXPECT_DOUBLE_EQ(x[9], 1.0);    // const
}

TEST(Features, DefaultObservationIsZeroedButConstIsOne) {
  const ThreadObservation o;
  const auto x = make_features(o, 1.0);
  for (std::size_t i = 1; i < kNumFeatures - 1; ++i) {
    EXPECT_DOUBLE_EQ(x[i], 0.0) << "feature " << i;
  }
  EXPECT_DOUBLE_EQ(x[kNumFeatures - 1], 1.0);
}

}  // namespace
}  // namespace sb::core
