// Property tests for the online adaptation layer (core/adapt.h):
//   * RLS with λ = 1 and P0 = I/ridge reproduces the batch ridge least
//     squares of trainer.cc / common/matrix.cc within tolerance;
//   * the RLS covariance stays symmetric positive-definite under 10k
//     seeded random updates (the invariant the explicit symmetrization in
//     adapt.cc exists to protect);
//   * the bias/gain correction is exactly identity at zero residual EWMAs;
//   * the adaptation config grammar round-trips and rejects bad entries.
#include "core/adapt.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/matrix.h"
#include "core/features.h"
#include "core/predictor.h"

namespace sb::core {
namespace {

/// SplitMix64, same stream as the fuzz harnesses: deterministic synthetic
/// data without touching the simulator's seeded RNG conventions.
class Stream {
 public:
  explicit Stream(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

 private:
  std::uint64_t state_;
};

std::array<double, kNumFeatures> random_features(Stream& s) {
  // Shaped like real Eq. 8 rows: a frequency ratio near 1, miss ratios and
  // instruction shares in [0, 1), an IPC in a plausible band, and the
  // constant-1 intercept column.
  std::array<double, kNumFeatures> x{};
  x[0] = s.uniform(0.4, 2.5);                          // freq ratio
  for (std::size_t k = 1; k < 8; ++k) x[k] = s.uniform();  // ratios/shares
  x[8] = s.uniform(0.1, 4.0);                          // measured ipc
  x[9] = 1.0;                                          // intercept
  return x;
}

TEST(RlsFilter, LambdaOneMatchesBatchRidgeLeastSquares) {
  // y = θ*·x + small noise, weighted exactly like trainer.cc's Θ
  // regression (w = 1/max(y, 1e-3)); with λ = 1 and P0 = I/ridge the
  // recursive solution IS the batch ridge solution of the same rows.
  const double ridge = 1e-6;
  const std::array<double, kNumFeatures> truth = {
      0.35, -0.2, -0.45, 0.1, 0.22, -0.3, -0.05, -0.08, 0.6, 0.15};
  Stream s(0xad457ULL);
  const std::size_t rows = 400;

  Matrix a(rows, kNumFeatures);
  std::vector<double> b(rows);
  RlsFilter rls(/*lambda=*/1.0, /*p0=*/1.0 / ridge);
  std::array<double, kNumFeatures> theta{};  // batch also starts from zero

  std::vector<std::array<double, kNumFeatures>> xs;
  std::vector<double> ys, ws;
  for (std::size_t r = 0; r < rows; ++r) {
    const auto x = random_features(s);
    double y = 0;
    for (std::size_t k = 0; k < kNumFeatures; ++k) y += truth[k] * x[k];
    y += s.uniform(-0.02, 0.02);
    y = std::max(y, 0.05);  // IPC-like: positive
    const double w = 1.0 / std::max(y, 1e-3);
    for (std::size_t k = 0; k < kNumFeatures; ++k) a.at(r, k) = w * x[k];
    b[r] = w * y;
    xs.push_back(x);
    ys.push_back(y);
    ws.push_back(w);
  }

  const std::vector<double> batch = least_squares(a, b, ridge);
  for (std::size_t r = 0; r < rows; ++r) {
    rls.update(xs[r], ys[r], ws[r], theta);
  }
  EXPECT_EQ(rls.updates(), rows);

  for (std::size_t k = 0; k < kNumFeatures; ++k) {
    EXPECT_NEAR(theta[k], batch[k], 1e-5)
        << "coefficient " << k << " diverged from batch LS";
  }
}

TEST(RlsFilter, LambdaOneRecoversTrueCoefficientsOnNoiselessData) {
  const std::array<double, kNumFeatures> truth = {
      0.5, -0.1, -0.3, 0.05, 0.2, -0.25, 0.0, -0.04, 0.7, 0.1};
  Stream s(0x5eedULL);
  RlsFilter rls(1.0, 1e8);
  std::array<double, kNumFeatures> theta{};
  for (int r = 0; r < 300; ++r) {
    const auto x = random_features(s);
    double y = 0;
    for (std::size_t k = 0; k < kNumFeatures; ++k) y += truth[k] * x[k];
    rls.update(x, y, 1.0, theta);
  }
  for (std::size_t k = 0; k < kNumFeatures; ++k) {
    EXPECT_NEAR(theta[k], truth[k], 1e-4);
  }
}

/// Cholesky factorization succeeds iff the matrix is (numerically)
/// symmetric positive-definite.
bool is_spd(const std::array<double, kNumFeatures * kNumFeatures>& p) {
  constexpr std::size_t n = kNumFeatures;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (p[i * n + j] != p[j * n + i]) return false;  // exact symmetry
    }
  }
  std::array<double, n * n> l{};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = p[i * n + j];
      for (std::size_t k = 0; k < j; ++k) sum -= l[i * n + k] * l[j * n + k];
      if (i == j) {
        if (!(sum > 0.0) || !std::isfinite(sum)) return false;
        l[i * n + i] = std::sqrt(sum);
      } else {
        l[i * n + j] = sum / l[j * n + j];
      }
    }
  }
  return true;
}

TEST(RlsFilter, CovarianceStaysSymmetricPositiveDefinite) {
  // 10k seeded random updates with forgetting (the hard case: λ < 1
  // re-inflates P every step, amplifying any asymmetry drift).
  Stream s(0xc0eba5eULL);
  RlsFilter rls(0.97, 100.0);
  std::array<double, kNumFeatures> theta{};
  ASSERT_TRUE(is_spd(rls.covariance()));
  for (int r = 0; r < 10'000; ++r) {
    const auto x = random_features(s);
    const double y = s.uniform(0.05, 4.0);
    const double w = 1.0 / std::max(y, 1e-3);
    rls.update(x, y, w, theta);
    ASSERT_TRUE(is_spd(rls.covariance())) << "lost SPD at update " << r;
    for (std::size_t k = 0; k < kNumFeatures; ++k) {
      ASSERT_TRUE(std::isfinite(theta[k])) << "theta diverged at " << r;
    }
  }
  EXPECT_EQ(rls.updates(), 10'000u);
}

TEST(RlsFilter, ResetRestoresInitialCovariance) {
  Stream s(0x7e5e7ULL);
  RlsFilter rls(0.99, 42.0);
  std::array<double, kNumFeatures> theta{};
  for (int r = 0; r < 50; ++r) {
    rls.update(random_features(s), s.uniform(0.1, 2.0), 1.0, theta);
  }
  rls.reset();
  const auto& p = rls.covariance();
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    for (std::size_t j = 0; j < kNumFeatures; ++j) {
      EXPECT_EQ(p[i * kNumFeatures + j], i == j ? 42.0 : 0.0);
    }
  }
}

TEST(RlsFilter, IgnoresNonFiniteAndNonPositiveWeightSamples) {
  RlsFilter rls(1.0, 10.0);
  std::array<double, kNumFeatures> theta{};
  std::array<double, kNumFeatures> x{};
  x.fill(1.0);
  rls.update(x, std::nan(""), 1.0, theta);
  rls.update(x, 1.0, 0.0, theta);
  rls.update(x, 1.0, -2.0, theta);
  std::array<double, kNumFeatures> bad = x;
  bad[3] = std::numeric_limits<double>::infinity();
  rls.update(bad, 1.0, 1.0, theta);
  EXPECT_EQ(rls.updates(), 0u);
  for (double t : theta) EXPECT_EQ(t, 0.0);
}

// ---------------------------------------------------------------------------
// OnlineAdapter: joins, identity, gains, drift reset
// ---------------------------------------------------------------------------

ThreadObservation make_obs(ThreadId tid, CoreId core, CoreTypeId type,
                           double ips, double watts) {
  ThreadObservation o;
  o.tid = tid;
  o.core = core;
  o.core_type = type;
  o.ips = ips;
  o.ipc = 1.0;
  o.power_w = watts;
  o.measured = true;
  return o;
}

TEST(OnlineAdapter, BiasGainIsIdentityAtZeroResidualEwmas) {
  AdaptationConfig cfg = AdaptationConfig::parse("bias");
  OnlineAdapter adapter(cfg, nullptr);

  // Unseen pairs: exactly 1.0, not approximately.
  EXPECT_EQ(adapter.gips_multiplier(0, 1), 1.0);
  EXPECT_EQ(adapter.power_multiplier(0, 1), 1.0);

  // A perfectly-predicted join drives the residuals (and EWMAs) to exactly
  // zero, so the gains must stay exactly 1.
  adapter.begin_forecasts(1);
  std::array<double, kNumFeatures> x{};
  adapter.add_forecast(7, 2, 0, 1, /*raw_gips=*/1.5, /*raw_w=*/0.8, x);
  const AdaptPassStats stats =
      adapter.observe(2, {make_obs(7, 2, 1, 1.5e9, 0.8)});
  EXPECT_EQ(stats.joined, 1);
  EXPECT_EQ(adapter.gips_multiplier(0, 1), 1.0);
  EXPECT_EQ(adapter.power_multiplier(0, 1), 1.0);
}

TEST(OnlineAdapter, GainTracksBiasAndRespectsClamp) {
  AdaptationConfig cfg = AdaptationConfig::parse("bias:1:0.5");  // alpha = 1
  OnlineAdapter adapter(cfg, nullptr);

  // Forecast half the observed value: err = (obs-pred)/obs = 0.5, so with
  // alpha = 1 the gain is 1/(1-0.5) = 2, clamped to 1.5.
  adapter.begin_forecasts(1);
  std::array<double, kNumFeatures> x{};
  adapter.add_forecast(1, 0, 0, 1, 1.0, 1.0, x);
  adapter.observe(2, {make_obs(1, 0, 1, 2.0e9, 2.0)});
  EXPECT_DOUBLE_EQ(adapter.gips_multiplier(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(adapter.power_multiplier(0, 1), 1.5);

  // Forecast 4x the observed value: err = -3, gain = 1/(1+3) = 0.25,
  // clamped to 1/1.5.
  adapter.begin_forecasts(2);
  adapter.add_forecast(1, 0, 0, 1, 4.0, 4.0, x);
  adapter.observe(3, {make_obs(1, 0, 1, 1.0e9, 1.0)});
  EXPECT_DOUBLE_EQ(adapter.gips_multiplier(0, 1), 1.0 / 1.5);
  EXPECT_DOUBLE_EQ(adapter.power_multiplier(0, 1), 1.0 / 1.5);
}

TEST(OnlineAdapter, JoinRequiresPredictedCoreTypeAndContiguousEpoch) {
  AdaptationConfig cfg = AdaptationConfig::parse("bias");
  OnlineAdapter adapter(cfg, nullptr);
  std::array<double, kNumFeatures> x{};

  // Wrong core: no join.
  adapter.begin_forecasts(1);
  adapter.add_forecast(1, 0, 0, 1, 1.0, 1.0, x);
  EXPECT_EQ(adapter.observe(2, {make_obs(1, 3, 1, 2.0e9, 2.0)}).joined, 0);

  // Unmeasured: no join.
  adapter.begin_forecasts(2);
  adapter.add_forecast(1, 0, 0, 1, 1.0, 1.0, x);
  auto unmeasured = make_obs(1, 0, 1, 2.0e9, 2.0);
  unmeasured.measured = false;
  EXPECT_EQ(adapter.observe(3, {unmeasured}).joined, 0);

  // Epoch gap: forecasts from pass 3 cannot validate at pass 5.
  adapter.begin_forecasts(3);
  adapter.add_forecast(1, 0, 0, 1, 1.0, 1.0, x);
  EXPECT_EQ(adapter.observe(5, {make_obs(1, 0, 1, 2.0e9, 2.0)}).joined, 0);

  // Contiguous and on the predicted core of the predicted type: joins.
  adapter.begin_forecasts(5);
  adapter.add_forecast(1, 0, 0, 1, 1.0, 1.0, x);
  EXPECT_EQ(adapter.observe(6, {make_obs(1, 0, 1, 2.0e9, 2.0)}).joined, 1);
  EXPECT_EQ(adapter.joins(), 1u);
}

TEST(OnlineAdapter, RlsUpdatesThetaAndDriftResetsCovariance) {
  // Low threshold + min_joins 2 so a persistently wrong forecast trips the
  // detector quickly; alpha 1 makes the |residual| EWMA jump immediately.
  AdaptationConfig cfg =
      AdaptationConfig::parse("bias:1:0.5,rls:0.995:1:1,drift:0.05:2");
  PredictorModel model(2);
  OnlineAdapter adapter(cfg, &model);

  const auto theta_before = model.theta(0, 1);
  std::array<double, kNumFeatures> x{};
  x[8] = 1.0;  // measured ipc feature
  x[9] = 1.0;  // intercept

  for (std::uint64_t pass = 1; pass <= 4; ++pass) {
    adapter.begin_forecasts(pass);
    adapter.add_forecast(1, 0, 0, 1, /*raw_gips=*/4.0, /*raw_w=*/4.0, x);
    // Observation far below the forecast: large positive residual.
    adapter.observe(pass + 1, {make_obs(1, 0, 1, 1.0e9, 1.0)});
    // Re-open so the next loop iteration's forecasts are contiguous.
  }
  EXPECT_GT(adapter.rls_updates(), 0u);
  EXPECT_GT(adapter.cov_resets(), 0u);
  EXPECT_NE(model.theta(0, 1), theta_before);

  const RlsFilter* rls = adapter.rls_filter(0, 1);
  ASSERT_NE(rls, nullptr);
  EXPECT_TRUE(is_spd(rls->covariance()));

  // Same-type pairs never carry a filter (Θ is not used same-type).
  EXPECT_EQ(adapter.rls_filter(1, 1), nullptr);

  const auto states = adapter.pair_states();
  ASSERT_FALSE(states.empty());
  bool found = false;
  for (const auto& st : states) {
    if (st.src_type == 0 && st.dst_type == 1) {
      found = true;
      EXPECT_EQ(st.joins, 4u);
      EXPECT_GT(st.cov_resets, 0u);
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Config grammar
// ---------------------------------------------------------------------------

TEST(AdaptationConfig, DefaultsAreDisabledAndEmptyStringParses) {
  const AdaptationConfig off;
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.to_string(), "");
  EXPECT_EQ(AdaptationConfig::parse(""), off);
  EXPECT_EQ(AdaptationConfig::parse(",,"), off);
}

TEST(AdaptationConfig, ParsesAndRoundTrips) {
  for (const char* spec :
       {"bias", "rls", "bias,rls", "bias:0.1", "bias:0.25:2",
        "rls:0.99", "rls:0.99:100", "rls:1:1000000:0",
        "bias:0.5:1,rls:0.9:10:1,drift:0.1:4"}) {
    const AdaptationConfig cfg = AdaptationConfig::parse(spec);
    EXPECT_TRUE(cfg.enabled()) << spec;
    EXPECT_EQ(AdaptationConfig::parse(cfg.to_string()), cfg)
        << "round-trip failed for '" << spec << "'";
  }
  const AdaptationConfig cfg = AdaptationConfig::parse("bias:0.25:2,rls:0.9");
  EXPECT_TRUE(cfg.bias);
  EXPECT_DOUBLE_EQ(cfg.bias_alpha, 0.25);
  EXPECT_DOUBLE_EQ(cfg.gain_clamp, 2.0);
  EXPECT_TRUE(cfg.rls);
  EXPECT_DOUBLE_EQ(cfg.rls_lambda, 0.9);
}

TEST(AdaptationConfig, RejectsMalformedEntries) {
  for (const char* spec :
       {"wat", "bias:0", "bias:1.5", "bias:0.5:-1", "bias:0.5:5",
        "bias:0.5:1:9", "rls:0.4", "rls:1.1", "rls:1:0", "rls:1:1e13",
        "rls:1:1:2", "rls:1:1:1:1", "drift", "drift:0", "drift:101",
        "drift:0.5:0", "drift:0.5:1000001", "drift:0.5:1:1", "bias:nan",
        "rls:1e999", "bias:0.5x", "rls:0.9:ten"}) {
    EXPECT_THROW((void)AdaptationConfig::parse(spec), std::invalid_argument)
        << spec;
  }
}

}  // namespace
}  // namespace sb::core
