// Direct unit tests for the objective library, in particular the fractional
// global-efficiency objective and its interaction with the SA optimizer.
#include "core/objective.h"

#include <gtest/gtest.h>

#include "common/matrix.h"
#include "core/sa_optimizer.h"

namespace sb::core {
namespace {

CoreSums sums(double gips, double watts, double load, int n) {
  CoreSums s;
  s.gips = gips;
  s.watts = watts;
  s.load = load;
  s.nthreads = n;
  return s;
}

TEST(GlobalEfficiency, FullyLoadedCoreIsPlainFraction) {
  GlobalEfficiencyObjective obj({0.1, 0.2});
  const auto [num, den] = obj.core_fraction(sums(4.0, 2.0, 1.0, 2), 0);
  EXPECT_DOUBLE_EQ(num, 4.0);
  EXPECT_DOUBLE_EQ(den, 2.0);  // no idle fraction, no sleep charge
}

TEST(GlobalEfficiency, EmptyCoreChargesFullSleepPower) {
  GlobalEfficiencyObjective obj({0.1, 0.2});
  const auto [num, den] = obj.core_fraction(sums(0, 0, 0, 0), 1);
  EXPECT_DOUBLE_EQ(num, 0.0);
  EXPECT_DOUBLE_EQ(den, 0.2);
}

TEST(GlobalEfficiency, PartialLoadChargesSleepForIdleFraction) {
  GlobalEfficiencyObjective obj({0.5});
  // 30% loaded: busy part 0.6 W + 70% of 0.5 W sleep.
  const auto [num, den] = obj.core_fraction(sums(1.2, 0.6, 0.3, 1), 0);
  EXPECT_DOUBLE_EQ(num, 1.2);
  EXPECT_NEAR(den, 0.6 + 0.7 * 0.5, 1e-12);
}

TEST(GlobalEfficiency, OversubscriptionSaturatesThroughput) {
  GlobalEfficiencyObjective obj({0.1});
  // load 2.0: the core can only serve half the aggregate demand.
  const auto [num, den] = obj.core_fraction(sums(8.0, 4.0, 2.0, 4), 0);
  EXPECT_DOUBLE_EQ(num, 4.0);
  EXPECT_DOUBLE_EQ(den, 2.0);
}

TEST(GlobalEfficiency, CoreBeyondSleepVectorHasNoSleepCharge) {
  GlobalEfficiencyObjective obj({0.1});
  const auto [num, den] = obj.core_fraction(sums(0, 0, 0, 0), 5);
  EXPECT_DOUBLE_EQ(num + den, 0.0);
}

TEST(GlobalEfficiency, OptimizerPrefersParkingOverHogging) {
  // Two identical duty-cycled threads; core 0 is fast but power hungry,
  // core 1 slow but efficient; sleep power of core 0 is tiny. The global
  // objective must park both threads on core 1 and let core 0 sleep — the
  // exact decision Eq. 11 (sum of ratios) cannot make.
  Matrix s = {{4.0, 1.0}, {4.0, 1.0}};
  Matrix p = {{3.0, 0.2}, {3.0, 0.2}};
  std::vector<double> demand = {0.4, 0.4};  // 0.4 GIPS each — fits either core
  GlobalEfficiencyObjective global({0.05, 0.02});
  SaConfig cfg;
  cfg.max_iterations = 2000;
  const auto r = SaOptimizer(cfg).optimize(s, p, global, {0, 0}, nullptr,
                                           &demand);
  EXPECT_EQ(r.allocation[0], 1);
  EXPECT_EQ(r.allocation[1], 1);

  // Eq. 11, by contrast, scores {0,1} and {1,1} about equally and won't
  // reliably evacuate core 0. Verify the global objective's J is the
  // physical IPS/W of the parked allocation: served 0.8 GIPS, power
  // 2×0.4/1.0×0.2 busy + 0.2 idle sleep-ish...
  const double j = r.objective;
  EXPECT_GT(j, 2.0) << "parked allocation must score like the efficient core";
}

TEST(GlobalEfficiency, EvaluateAllocationSupportsFractional) {
  Matrix s = {{2.0, 1.0}};
  Matrix p = {{1.0, 0.5}};
  GlobalEfficiencyObjective obj({0.3, 0.3});
  // Thread on core 0 (full load): num 2, den 1 + sleep of idle core 1 (0.3).
  EXPECT_NEAR(evaluate_allocation(s, p, obj, {0}), 2.0 / 1.3, 1e-12);
  EXPECT_NEAR(evaluate_allocation(s, p, obj, {1}), 1.0 / 0.8, 1e-12);
}

TEST(Objectives, FactoryReturnsEq11) {
  const auto obj = make_energy_efficiency_objective();
  EXPECT_EQ(obj->name(), "ips_per_watt");
  EXPECT_FALSE(obj->fractional());
}

}  // namespace
}  // namespace sb::core
