// Property sweeps of the mechanistic core model over the synthetic-builder
// parameter space: every characterization knob must move IPC in the
// physically sensible direction on every core type. These invariants are
// what make the cross-core predictor learnable at all.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/core_params.h"
#include "perf/interval_model.h"
#include "workload/synthetic.h"

namespace sb::perf {
namespace {

const std::vector<arch::CoreParams>& all_cores() {
  static const std::vector<arch::CoreParams> kCores = {
      arch::huge_core(), arch::big_core(), arch::medium_core(),
      arch::small_core(), arch::a15_core(), arch::a7_core()};
  return kCores;
}

workload::WorkloadProfile base_profile() {
  return workload::SyntheticBuilder("prop").build().phases[0].profile;
}

class CoreSweep : public ::testing::TestWithParam<int> {
 protected:
  const arch::CoreParams& core() const {
    return all_cores()[static_cast<std::size_t>(GetParam())];
  }
  IntervalModel model_;
};

TEST_P(CoreSweep, IpcMonotoneNonDecreasingInIlp) {
  double prev = 0;
  for (double ilp : {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0}) {
    auto p = base_profile();
    p.ilp = ilp;
    const double ipc = model_.evaluate(p, core()).ipc;
    EXPECT_GE(ipc + 1e-12, prev) << core().name << " ilp=" << ilp;
    prev = ipc;
  }
}

TEST_P(CoreSweep, IpcMonotoneNonIncreasingInMemoryShare) {
  double prev = 1e9;
  for (double ms : {0.05, 0.15, 0.25, 0.35, 0.45, 0.6}) {
    auto p = base_profile();
    p.mem_share = ms;
    const double ipc = model_.evaluate(p, core()).ipc;
    EXPECT_LE(ipc, prev + 1e-12) << core().name << " mem_share=" << ms;
    prev = ipc;
  }
}

TEST_P(CoreSweep, IpcMonotoneNonIncreasingInFootprint) {
  double prev = 1e9;
  for (double fp : {8.0, 32.0, 128.0, 512.0, 2048.0, 8192.0}) {
    auto p = base_profile();
    p.footprint_d_kb = fp;
    const double ipc = model_.evaluate(p, core()).ipc;
    EXPECT_LE(ipc, prev + 1e-12) << core().name << " footprint=" << fp;
    prev = ipc;
  }
}

TEST_P(CoreSweep, IpcMonotoneNonIncreasingInMispredictRate) {
  double prev = 1e9;
  for (double mr : {0.0, 0.01, 0.03, 0.06, 0.12, 0.25}) {
    auto p = base_profile();
    p.mispredict_rate = mr;
    const double ipc = model_.evaluate(p, core()).ipc;
    EXPECT_LE(ipc, prev + 1e-12) << core().name << " mr_b=" << mr;
    prev = ipc;
  }
}

TEST_P(CoreSweep, IpcMonotoneNonDecreasingInMlp) {
  // For a memory-bound profile, more MLP means more overlap, never less.
  double prev = 0;
  for (double mlp : {1.0, 1.5, 2.0, 3.0, 4.0, 8.0}) {
    auto p = base_profile();
    p.mem_share = 0.4;
    p.footprint_d_kb = 4096;
    p.mr_l1d_ref = 0.12;
    p.l2_miss_ratio = 0.6;
    p.mlp = mlp;
    const double ipc = model_.evaluate(p, core()).ipc;
    EXPECT_GE(ipc + 1e-12, prev) << core().name << " mlp=" << mlp;
    prev = ipc;
  }
}

TEST_P(CoreSweep, IpcMonotoneNonIncreasingInMemoryLatency) {
  double prev = 1e9;
  for (double lat : {40.0, 80.0, 120.0, 200.0, 320.0}) {
    auto p = base_profile();
    p.mem_share = 0.35;
    p.footprint_d_kb = 2048;
    const double ipc = model_.evaluate(p, core(), lat).ipc;
    EXPECT_LE(ipc, prev + 1e-12) << core().name << " lat=" << lat;
    prev = ipc;
  }
}

TEST_P(CoreSweep, WarmupFactorNeverHelps) {
  double prev = 1e9;
  for (double w : {1.0, 1.5, 2.0, 3.0, 5.0}) {
    auto p = base_profile();
    const double ipc = model_.evaluate(p, core(), 80.0, w).ipc;
    EXPECT_LE(ipc, prev + 1e-12) << core().name << " warm=" << w;
    prev = ipc;
  }
}

TEST_P(CoreSweep, AllRatesStayInUnitRange) {
  for (double fp : {1.0, 64.0, 4096.0}) {
    for (double mr : {0.0, 0.2, 0.5}) {
      auto p = base_profile();
      p.footprint_d_kb = fp;
      p.mispredict_rate = mr;
      const auto bd = model_.evaluate(p, core());
      EXPECT_GE(bd.mr_l1i, 0.0);
      EXPECT_LE(bd.mr_l1i, 1.0);
      EXPECT_GE(bd.mr_l1d, 0.0);
      EXPECT_LE(bd.mr_l1d, 1.0);
      EXPECT_GE(bd.mr_branch, 0.0);
      EXPECT_LE(bd.mr_branch, 0.5);
      EXPECT_GT(bd.ipc, 0.0);
      EXPECT_LE(bd.ipc, core().issue_width);
      EXPECT_GE(bd.mem_misses_per_inst, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCoreTypes, CoreSweep, ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return all_cores()[static_cast<std::size_t>(
                                                  info.param)]
                               .name;
                         });

}  // namespace
}  // namespace sb::perf
