#include "perf/counters.h"

#include <gtest/gtest.h>

namespace sb::perf {
namespace {

HpcCounters sample() {
  HpcCounters c;
  c.cy_busy = 600;
  c.cy_idle = 400;
  c.cy_sleep = 1000;
  c.inst_total = 2000;
  c.inst_mem = 500;
  c.inst_branch = 300;
  c.branch_mispred = 15;
  c.l1i_access = 2000;
  c.l1i_miss = 20;
  c.l1d_access = 500;
  c.l1d_miss = 25;
  c.itlb_access = 2000;
  c.itlb_miss = 2;
  c.dtlb_access = 500;
  c.dtlb_miss = 5;
  return c;
}

TEST(HpcCounters, DerivedRatios) {
  const HpcCounters c = sample();
  EXPECT_DOUBLE_EQ(c.imsh(), 0.25);
  EXPECT_DOUBLE_EQ(c.ibsh(), 0.15);
  EXPECT_DOUBLE_EQ(c.mr_branch(), 0.05);
  EXPECT_DOUBLE_EQ(c.mr_l1i(), 0.01);
  EXPECT_DOUBLE_EQ(c.mr_l1d(), 0.05);
  EXPECT_DOUBLE_EQ(c.mr_itlb(), 0.001);
  EXPECT_DOUBLE_EQ(c.mr_dtlb(), 0.01);
}

TEST(HpcCounters, IpcUsesActiveCyclesOnly) {
  const HpcCounters c = sample();
  EXPECT_EQ(c.active_cycles(), 1000u);  // sleep cycles excluded (paper §4.2.1)
  EXPECT_DOUBLE_EQ(c.ipc(), 2.0);
}

TEST(HpcCounters, EmptyRatiosAreZero) {
  const HpcCounters c;
  EXPECT_TRUE(c.empty());
  EXPECT_DOUBLE_EQ(c.imsh(), 0.0);
  EXPECT_DOUBLE_EQ(c.mr_branch(), 0.0);
  EXPECT_DOUBLE_EQ(c.ipc(), 0.0);
}

TEST(HpcCounters, Accumulation) {
  HpcCounters a = sample();
  a += sample();
  EXPECT_EQ(a.inst_total, 4000u);
  EXPECT_EQ(a.cy_busy, 1200u);
  EXPECT_EQ(a.branch_mispred, 30u);
  // Ratios invariant under uniform scaling.
  EXPECT_DOUBLE_EQ(a.imsh(), 0.25);
  const HpcCounters b = sample() + sample();
  EXPECT_EQ(b.l1d_miss, 50u);
}

TEST(HpcCounters, Reset) {
  HpcCounters c = sample();
  c.reset();
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.dtlb_miss, 0u);
}

}  // namespace
}  // namespace sb::perf
