#include "perf/interval_model.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "arch/core_params.h"
#include "arch/platform.h"
#include "perf/perf_model.h"
#include "workload/benchmarks.h"

namespace sb::perf {
namespace {

workload::WorkloadProfile mem_bound() {
  auto p = workload::BenchmarkLibrary::get("canneal").phases[0].profile;
  return p;
}

workload::WorkloadProfile compute_bound() {
  return workload::BenchmarkLibrary::get("swaptions").phases[0].profile;
}

TEST(IntervalModel, PeakIpcApproximatesTable2) {
  const IntervalModel m;
  // Table 2: Huge 4.18, Big 2.60, Medium 1.31, Small 0.91. The mechanistic
  // model is calibrated to land near these (±25%).
  EXPECT_NEAR(m.peak_ipc(arch::huge_core()), 4.18, 4.18 * 0.25);
  EXPECT_NEAR(m.peak_ipc(arch::big_core()), 2.60, 2.60 * 0.25);
  EXPECT_NEAR(m.peak_ipc(arch::medium_core()), 1.31, 1.31 * 0.25);
  EXPECT_NEAR(m.peak_ipc(arch::small_core()), 0.91, 0.91 * 0.25);
}

TEST(IntervalModel, PeakIpcStrictlyOrderedByCoreStrength) {
  const IntervalModel m;
  EXPECT_GT(m.peak_ipc(arch::huge_core()), m.peak_ipc(arch::big_core()));
  EXPECT_GT(m.peak_ipc(arch::big_core()), m.peak_ipc(arch::medium_core()));
  EXPECT_GT(m.peak_ipc(arch::medium_core()), m.peak_ipc(arch::small_core()));
}

TEST(IntervalModel, IpcNeverExceedsIssueWidth) {
  const IntervalModel m;
  for (const auto& core : {arch::huge_core(), arch::small_core()}) {
    for (const auto& name : workload::BenchmarkLibrary::parsec_names()) {
      for (const auto& ph : workload::BenchmarkLibrary::get(name).phases) {
        const auto bd = m.evaluate(ph.profile, core);
        EXPECT_LE(bd.ipc, core.issue_width) << name << " on " << core.name;
        EXPECT_GT(bd.ipc, 0.0);
      }
    }
  }
}

TEST(IntervalModel, MemBoundSuffersMoreFromLatency) {
  const IntervalModel m;
  const auto core = arch::big_core();
  const auto mb_fast = m.evaluate(mem_bound(), core, 80.0);
  const auto mb_slow = m.evaluate(mem_bound(), core, 240.0);
  const auto cb_fast = m.evaluate(compute_bound(), core, 80.0);
  const auto cb_slow = m.evaluate(compute_bound(), core, 240.0);
  const double mb_loss = 1.0 - mb_slow.ipc / mb_fast.ipc;
  const double cb_loss = 1.0 - cb_slow.ipc / cb_fast.ipc;
  EXPECT_GT(mb_loss, 0.2);
  EXPECT_LT(cb_loss, 0.05);
  EXPECT_GT(mb_loss, 3 * cb_loss);
}

TEST(IntervalModel, WarmupDepressesIpc) {
  const IntervalModel m;
  const auto core = arch::medium_core();
  const auto warm = m.evaluate(mem_bound(), core, 80.0, 1.0);
  const auto cold = m.evaluate(mem_bound(), core, 80.0, 3.0);
  EXPECT_LT(cold.ipc, warm.ipc);
  EXPECT_GT(cold.mr_l1d, warm.mr_l1d);
}

TEST(IntervalModel, BiggerCachesLowerMissRates) {
  const IntervalModel m;
  const auto on_huge = m.evaluate(mem_bound(), arch::huge_core());   // 64 KB
  const auto on_small = m.evaluate(mem_bound(), arch::small_core()); // 16 KB
  EXPECT_LE(on_huge.mr_l1d, on_small.mr_l1d);
  EXPECT_LE(on_huge.mr_l1i, on_small.mr_l1i);
}

TEST(IntervalModel, BetterPredictorFewerMispredicts) {
  const IntervalModel m;
  const auto prof = workload::BenchmarkLibrary::get("freqmine").phases[0].profile;
  const auto on_huge = m.evaluate(prof, arch::huge_core());
  const auto on_small = m.evaluate(prof, arch::small_core());
  EXPECT_LT(on_huge.mr_branch, on_small.mr_branch);
}

TEST(IntervalModel, BreakdownSumsToTotalCpi) {
  const IntervalModel m;
  const auto bd = m.evaluate(mem_bound(), arch::big_core());
  EXPECT_NEAR(bd.total_cpi(),
              bd.cpi_base + bd.cpi_l1i + bd.cpi_l1d + bd.cpi_branch +
                  bd.cpi_tlb,
              1e-12);
  EXPECT_NEAR(bd.ipc, std::min(4.0, 1.0 / bd.total_cpi()), 1e-12);
}

TEST(IntervalModel, InvalidLatencyThrows) {
  const IntervalModel m;
  EXPECT_THROW(m.evaluate(mem_bound(), arch::big_core(), 0.0),
               std::invalid_argument);
}

TEST(IntervalModel, MemTrafficTracksMissRates) {
  const IntervalModel m;
  const auto mb = m.evaluate(mem_bound(), arch::small_core());
  const auto cb = m.evaluate(compute_bound(), arch::small_core());
  EXPECT_GT(mb.mem_misses_per_inst, 5 * cb.mem_misses_per_inst);
}

// --- PerfModel facade + counter synthesis ---

TEST(PerfModel, EvaluateByCoreAndType) {
  const auto platform = arch::Platform::quad_heterogeneous();
  const PerfModel pm(platform);
  const auto by_core = pm.evaluate(mem_bound(), 2);
  const auto by_type = pm.evaluate_on_type(mem_bound(), platform.type_of(2));
  EXPECT_DOUBLE_EQ(by_core.ipc, by_type.ipc);
}

TEST(PerfModel, PeakIpcCachedPerType) {
  const auto platform = arch::Platform::quad_heterogeneous();
  const PerfModel pm(platform);
  const IntervalModel m;
  for (CoreTypeId t = 0; t < platform.num_types(); ++t) {
    EXPECT_DOUBLE_EQ(pm.peak_ipc(t),
                     m.peak_ipc(platform.params_of_type(t)));
  }
}

TEST(PerfModel, CounterSynthesisConsistency) {
  const auto platform = arch::Platform::quad_heterogeneous();
  const PerfModel pm(platform);
  const auto prof = mem_bound();
  const auto bd = pm.evaluate(prof, 1);
  HpcCounters c;
  const double insts = 1e7;
  const double cycles = insts * bd.total_cpi();
  PerfModel::accumulate_counters(c, bd, prof, insts, cycles);

  EXPECT_NEAR(static_cast<double>(c.inst_total), insts, 1.0);
  EXPECT_NEAR(c.imsh(), prof.mem_share, 1e-3);
  EXPECT_NEAR(c.ibsh(), prof.branch_share, 1e-3);
  EXPECT_NEAR(c.mr_l1d(), bd.mr_l1d, 1e-3);
  EXPECT_NEAR(c.mr_branch(), bd.mr_branch, 1e-3);
  EXPECT_NEAR(c.ipc(), bd.ipc, 0.01);
  EXPECT_EQ(c.active_cycles(), c.cy_busy + c.cy_idle);
}

TEST(PerfModel, AccumulateIgnoresNonPositive) {
  HpcCounters c;
  const auto platform = arch::Platform::quad_heterogeneous();
  const PerfModel pm(platform);
  const auto bd = pm.evaluate(mem_bound(), 0);
  PerfModel::accumulate_counters(c, bd, mem_bound(), 0.0, 100.0);
  PerfModel::accumulate_counters(c, bd, mem_bound(), 100.0, 0.0);
  EXPECT_TRUE(c.empty());
}

class AllBenchmarksOnAllCores
    : public ::testing::TestWithParam<std::string> {};

TEST_P(AllBenchmarksOnAllCores, FasterOrEqualOnStrongerCores) {
  // Property: for every benchmark phase, absolute throughput (IPS) on a
  // stronger core is at least that of the next weaker core. IPC may invert
  // (frequency-driven memory penalties), throughput must not.
  const IntervalModel m;
  const arch::CoreParams order[] = {arch::huge_core(), arch::big_core(),
                                    arch::medium_core(), arch::small_core()};
  for (const auto& ph : workload::BenchmarkLibrary::get(GetParam()).phases) {
    for (int i = 0; i + 1 < 4; ++i) {
      const double ips_strong =
          m.evaluate(ph.profile, order[i]).ipc * order[i].freq_ghz();
      const double ips_weak =
          m.evaluate(ph.profile, order[i + 1]).ipc * order[i + 1].freq_ghz();
      EXPECT_GE(ips_strong, ips_weak * 0.98)
          << GetParam() << " phase " << ph.profile.name << " cores "
          << order[i].name << " vs " << order[i + 1].name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Parsec, AllBenchmarksOnAllCores,
    ::testing::ValuesIn(workload::BenchmarkLibrary::parsec_names()));

}  // namespace
}  // namespace sb::perf
