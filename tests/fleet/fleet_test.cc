// Fleet-simulation integration tests: the determinism matrix (worker
// counts, policy permutations), job lifecycle invariants and the obs
// contract. Windows are kept short — a 2-node, 200 ms fleet steps in well
// under a second.
#include "fleet/fleet.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "arch/platform.h"

namespace sb::fleet {
namespace {

FleetConfig small_cfg(DispatchPolicy policy = DispatchPolicy::kEnergyAware,
                      int nodes = 2) {
  FleetConfig cfg;
  cfg.nodes = nodes;
  cfg.policy = policy;
  cfg.rate_hz = 260.0;
  cfg.duration = milliseconds(200);
  cfg.seed = 77;
  cfg.step_jobs = 1;
  return cfg;
}

std::vector<arch::Platform> quads(int n) {
  return std::vector<arch::Platform>(static_cast<std::size_t>(n),
                                     arch::Platform::quad_heterogeneous());
}

std::string json_of(const FleetResult& r) {
  std::ostringstream os;
  write_fleet_json(os, r);
  return os.str();
}

TEST(NearestRank, MatchesHandComputedRanks) {
  const std::vector<std::uint64_t> s = {50, 10, 40, 20, 30};
  EXPECT_EQ(nearest_rank(s, 0.0), 10u);
  EXPECT_EQ(nearest_rank(s, 0.5), 30u);
  EXPECT_EQ(nearest_rank(s, 0.99), 50u);
  EXPECT_EQ(nearest_rank(s, 1.0), 50u);
  EXPECT_EQ(nearest_rank({}, 0.99), 0u);
}

TEST(LatencyTail, SummarizesSample) {
  std::vector<std::uint64_t> s;
  for (std::uint64_t v = 1; v <= 100; ++v) s.push_back(101 - v);
  const LatencyTail t = tail_of(s);
  EXPECT_EQ(t.count, 100u);
  EXPECT_DOUBLE_EQ(t.mean_ns, 50.5);
  EXPECT_EQ(t.p50_ns, 50u);
  EXPECT_EQ(t.p95_ns, 95u);
  EXPECT_EQ(t.p99_ns, 99u);
  EXPECT_EQ(t.max_ns, 100u);
  EXPECT_EQ(tail_of({}).count, 0u);
}

// The determinism contract behind every BENCH_fleet gate: the whole
// FleetResult — including per-node rollups and exact latency tails — is a
// pure function of (config, platforms, catalog), independent of the
// stepping worker count.
TEST(FleetSimulation, BitIdenticalAcrossWorkerCounts) {
  auto run_with = [](int step_jobs) {
    FleetConfig cfg = small_cfg();
    cfg.step_jobs = step_jobs;
    FleetSimulation fleet(cfg, quads(2));
    return json_of(fleet.run());
  };
  const std::string j1 = run_with(1);
  EXPECT_EQ(j1, run_with(4));
  EXPECT_EQ(j1, run_with(0));  // 0 = auto (SB_JOBS / hardware concurrency)
}

TEST(FleetSimulation, ArrivalStreamIdenticalAcrossPolicies) {
  auto jobs_under = [](DispatchPolicy policy) {
    FleetSimulation fleet(small_cfg(policy), quads(2));
    return fleet.run().jobs;
  };
  const auto rr = jobs_under(DispatchPolicy::kRoundRobin);
  const auto energy = jobs_under(DispatchPolicy::kEnergyAware);
  ASSERT_EQ(rr.size(), energy.size());
  ASSERT_GT(rr.size(), 10u);
  for (std::size_t i = 0; i < rr.size(); ++i) {
    // Same jobs, same arrival instants, same classes: the policies differ
    // only in where (and when) each job is placed.
    EXPECT_EQ(rr[i].id, energy[i].id);
    EXPECT_EQ(rr[i].arrival, energy[i].arrival);
    EXPECT_EQ(rr[i].job_class, energy[i].job_class);
  }
}

TEST(FleetSimulation, JobLifecycleOrderingHolds) {
  FleetSimulation fleet(small_cfg(), quads(2));
  const FleetResult r = fleet.run();
  EXPECT_GT(r.jobs_arrived, 0u);
  EXPECT_GT(r.jobs_completed, 0u);
  EXPECT_EQ(r.jobs.size(), r.jobs_arrived);
  for (const JobRecord& j : r.jobs) {
    if (j.admitted == kTimeNever) {
      EXPECT_EQ(j.node, -1);
      continue;
    }
    ASSERT_GE(j.node, 0);
    ASSERT_LT(j.node, r.nodes);
    EXPECT_GE(j.admitted, j.arrival);
    if (j.first_run != kTimeNever) EXPECT_GE(j.first_run, j.admitted);
    if (j.completed != kTimeNever) {
      ASSERT_NE(j.first_run, kTimeNever);
      EXPECT_GE(j.completed, j.first_run);
    }
  }
  EXPECT_EQ(r.queue.count, r.jobs_dispatched);
  EXPECT_EQ(r.sojourn.count, r.jobs_completed);
  EXPECT_GT(r.instructions, 0u);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_NEAR(r.je_inst_per_joule,
              static_cast<double>(r.instructions) / r.energy_j, 1e-6);
}

TEST(FleetSimulation, HeterogeneousShapesAndReplication) {
  // Explicit per-node shapes…
  FleetSimulation hetero(small_cfg(),
                         {arch::Platform::quad_heterogeneous(),
                          arch::Platform::octa_big_little()});
  const FleetResult r = hetero.run();
  ASSERT_EQ(r.node_results.size(), 2u);
  EXPECT_GT(r.node_results[1].instructions, 0u);
  // …or one platform replicated; anything else is a shape mismatch.
  EXPECT_NO_THROW(FleetSimulation(small_cfg(), quads(1)));
  EXPECT_THROW(FleetSimulation(small_cfg(), quads(3)), std::invalid_argument);
  EXPECT_THROW(FleetSimulation(small_cfg(), {}), std::invalid_argument);
}

TEST(FleetSimulation, VanillaNodePolicyCompletesJobs) {
  FleetConfig cfg = small_cfg(DispatchPolicy::kLeastLoaded);
  cfg.node_policy = "vanilla";
  FleetSimulation fleet(cfg, quads(2));
  const FleetResult r = fleet.run();
  EXPECT_EQ(r.node_policy, "vanilla");
  EXPECT_GT(r.jobs_completed, 0u);
}

TEST(FleetSimulation, RunTwiceThrows) {
  FleetSimulation fleet(small_cfg(), quads(2));
  fleet.run();
  EXPECT_THROW(fleet.run(), std::logic_error);
}

TEST(FleetSimulation, CatalogValidation) {
  EXPECT_THROW(FleetSimulation(small_cfg(), quads(2), {}),
               std::invalid_argument);
  EXPECT_THROW(FleetSimulation(small_cfg(), quads(2),
                               {{"not-a-benchmark", 1, 1000}}),
               std::out_of_range);
  EXPECT_THROW(
      FleetSimulation(small_cfg(), quads(2), {{"blackscholes", 0, 1000}}),
      std::invalid_argument);
  EXPECT_THROW(FleetSimulation(small_cfg(), quads(2), {{"blackscholes", 1, 0}}),
               std::invalid_argument);
}

TEST(FleetSimulation, ObsContract) {
  FleetConfig cfg = small_cfg();
  cfg.trace = true;
  cfg.metrics = true;
  cfg.node_obs = true;
  FleetSimulation fleet(cfg, quads(2));
  const FleetResult r = fleet.run();

  ASSERT_NE(r.obs, nullptr);
  EXPECT_EQ(r.obs->run, 0);
  const auto& counters = r.obs->metrics.counters();
  ASSERT_TRUE(counters.count("fleet.jobs.arrived"));
  EXPECT_EQ(counters.at("fleet.jobs.arrived").value, r.jobs_arrived);
  EXPECT_EQ(counters.at("fleet.jobs.dispatched").value, r.jobs_dispatched);
  EXPECT_EQ(counters.at("fleet.jobs.completed").value, r.jobs_completed);
  const auto& hists = r.obs->metrics.histograms();
  ASSERT_TRUE(hists.count("fleet.job.queue_ns"));
  EXPECT_EQ(hists.at("fleet.job.queue_ns").count(), r.jobs_dispatched);

  // One fleet.quantum span per 5 ms quantum of the 200 ms window.
  std::size_t quanta = 0, dispatches = 0;
  for (const auto& ev : r.obs->trace.events) {
    const auto name = r.obs->trace.name_of(ev.name);
    if (name == "fleet.quantum") ++quanta;
    if (name == "fleet.dispatch") ++dispatches;
  }
  EXPECT_EQ(quanta, 40u);
  EXPECT_EQ(dispatches, r.jobs_dispatched);

  // Per-node registries ride along, pid-stamped after the fleet (run 0).
  ASSERT_EQ(r.node_obs.size(), 2u);
  EXPECT_EQ(r.node_obs[0]->run, 1);
  EXPECT_EQ(r.node_obs[1]->run, 2);
}

TEST(FleetSimulation, ObsOffKeepsResultLean) {
  FleetSimulation fleet(small_cfg(), quads(2));
  const FleetResult r = fleet.run();
  EXPECT_EQ(r.obs, nullptr);
  EXPECT_TRUE(r.node_obs.empty());
}

}  // namespace
}  // namespace sb::fleet
