// Pure-policy unit tests: dispatchers are functions of NodeView/JobView
// digests, so every placement rule is checkable without a simulation.
#include "fleet/dispatch.h"

#include <gtest/gtest.h>

#include <vector>

namespace sb::fleet {
namespace {

NodeView view(int index, int cores, int runnable, double eff_ipj) {
  NodeView v;
  v.index = index;
  v.cores = cores;
  v.runnable_threads = runnable;
  v.idle = runnable == 0;
  v.best_eff_ipj = eff_ipj;
  return v;
}

JobView job(std::uint64_t insts = 10'000'000, int threads = 1) {
  JobView j;
  j.threads = threads;
  j.total_instructions = insts;
  return j;
}

TEST(RoundRobin, CyclesNodeIndices) {
  auto d = make_round_robin();
  std::vector<NodeView> views = {view(0, 4, 0, 0), view(1, 4, 0, 0),
                                 view(2, 4, 0, 0)};
  EXPECT_EQ(d->pick(job(), views), 0);
  EXPECT_EQ(d->pick(job(), views), 1);
  EXPECT_EQ(d->pick(job(), views), 2);
  EXPECT_EQ(d->pick(job(), views), 0);
}

TEST(RoundRobin, IgnoresLoadAndEfficiency) {
  auto d = make_round_robin();
  std::vector<NodeView> views = {view(0, 4, 100, 0.0), view(1, 4, 0, 1e9)};
  EXPECT_EQ(d->pick(job(), views), 0);  // blind: saturated node still chosen
  EXPECT_EQ(d->pick(job(), views), 1);
}

TEST(RoundRobin, EmptyFleetDefers) {
  auto d = make_round_robin();
  EXPECT_EQ(d->pick(job(), {}), -1);
}

TEST(LeastLoaded, PicksMinimumThreadsPerCore) {
  auto d = make_least_loaded();
  // Node 1: 2/8 = 0.25 beats node 0: 2/4 = 0.5 and node 2: 3/8.
  std::vector<NodeView> views = {view(0, 4, 2, 0), view(1, 8, 2, 0),
                                 view(2, 8, 3, 0)};
  EXPECT_EQ(d->pick(job(), views), 1);
}

TEST(LeastLoaded, TiesResolveToLowestIndex) {
  auto d = make_least_loaded();
  std::vector<NodeView> views = {view(0, 4, 1, 0), view(1, 4, 1, 0),
                                 view(2, 4, 1, 0)};
  EXPECT_EQ(d->pick(job(), views), 0);
  EXPECT_EQ(d->pick(job(), views), 0);  // stateless: no rotation
}

TEST(EnergyAware, PrefersHigherPredictedEfficiency) {
  auto d = make_energy_aware(2.0, 0.0);
  std::vector<NodeView> views = {view(0, 4, 0, 1000.0), view(1, 4, 0, 2500.0)};
  EXPECT_EQ(d->pick(job(), views), 1);
}

TEST(EnergyAware, FreeCapacityTierBeatsTimeSharedEfficiency) {
  auto d = make_energy_aware(4.0, 0.0);
  // Node 0 would time-share (5 threads on 4 cores) despite stellar
  // efficiency; node 1 still has a free core. Tier ranking must win.
  std::vector<NodeView> views = {view(0, 4, 4, 9000.0), view(1, 4, 3, 900.0)};
  EXPECT_EQ(d->pick(job(), views), 1);
}

TEST(EnergyAware, WithinTimeSharedTierLoadStretchesEnergy) {
  auto d = make_energy_aware(8.0, 0.0);
  // Both nodes time-share. Node 0: score = insts/2000 * (1 + 6/4).
  // Node 1: insts/2000 * (1 + 5/4) — lighter contention wins at equal eff.
  std::vector<NodeView> views = {view(0, 4, 5, 2000.0), view(1, 4, 4, 2000.0)};
  EXPECT_EQ(d->pick(job(), views), 1);
}

TEST(EnergyAware, EqualScoresFallBackToLeastLoaded) {
  auto d = make_energy_aware(2.0, 0.0);
  // Identical shapes and predictions, both tier 0: the lower-load node
  // must win even though it appears later in the list.
  std::vector<NodeView> views = {view(0, 8, 3, 1500.0), view(1, 8, 1, 1500.0)};
  EXPECT_EQ(d->pick(job(), views), 1);
}

TEST(EnergyAware, LoadCapExcludesSaturatedNodes) {
  auto d = make_energy_aware(1.5, 0.0);
  // Cap = 1.5 * 4 = 6 threads. Node 0 at 6 can't take one more; node 1 at
  // 5 can (5 + 1 <= 6).
  std::vector<NodeView> views = {view(0, 4, 6, 5000.0), view(1, 4, 5, 100.0)};
  EXPECT_EQ(d->pick(job(), views), 1);
}

TEST(EnergyAware, DefersWhenEveryNodeSaturated) {
  auto d = make_energy_aware(1.0, 0.0);
  std::vector<NodeView> views = {view(0, 4, 4, 5000.0), view(1, 2, 2, 5000.0)};
  EXPECT_EQ(d->pick(job(), views), -1);
}

TEST(EnergyAware, MultiThreadJobsCountEveryThreadAgainstTheCap) {
  auto d = make_energy_aware(1.0, 0.0);
  std::vector<NodeView> views = {view(0, 4, 2, 5000.0), view(1, 4, 0, 100.0)};
  // A 3-thread job does not fit node 0 (2 + 3 > 4) but fits node 1.
  EXPECT_EQ(d->pick(job(10'000'000, 3), views), 1);
}

TEST(EnergyAware, ConsolidationBiasSurchargesIdleNodes) {
  // Idle node 1 is slightly more efficient, but a 50% wake surcharge makes
  // the already-busy node 0 cheaper; with bias 0 the preference flips.
  std::vector<NodeView> views = {view(0, 4, 1, 2000.0), view(1, 4, 0, 2400.0)};
  EXPECT_EQ(make_energy_aware(2.0, 0.5)->pick(job(), views), 0);
  EXPECT_EQ(make_energy_aware(2.0, 0.0)->pick(job(), views), 1);
}

TEST(EnergyAware, NoPredictionDegradesToLeastLoaded) {
  auto d = make_energy_aware(4.0, 0.0);
  std::vector<NodeView> views = {view(0, 4, 3, 0.0), view(1, 4, 1, 0.0)};
  EXPECT_EQ(d->pick(job(), views), 1);
}

TEST(MakeDispatcher, HonorsConfigPolicy) {
  FleetConfig cfg;
  cfg.policy = DispatchPolicy::kRoundRobin;
  EXPECT_STREQ(make_dispatcher(cfg)->name(), "rr");
  cfg.policy = DispatchPolicy::kLeastLoaded;
  EXPECT_STREQ(make_dispatcher(cfg)->name(), "least");
  cfg.policy = DispatchPolicy::kEnergyAware;
  EXPECT_STREQ(make_dispatcher(cfg)->name(), "energy");
}

}  // namespace
}  // namespace sb::fleet
