#include "fleet/fleet_config.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sb::fleet {
namespace {

TEST(FleetConfig, ParseNodeCountOnlyKeepsDefaults) {
  const FleetConfig cfg = FleetConfig::parse("6");
  EXPECT_EQ(cfg.nodes, 6);
  EXPECT_EQ(cfg.policy, DispatchPolicy::kEnergyAware);
  EXPECT_DOUBLE_EQ(cfg.rate_hz, 300.0);
}

TEST(FleetConfig, ParseFullGrammar) {
  const FleetConfig cfg = FleetConfig::parse("8:rr:450.5");
  EXPECT_EQ(cfg.nodes, 8);
  EXPECT_EQ(cfg.policy, DispatchPolicy::kRoundRobin);
  EXPECT_DOUBLE_EQ(cfg.rate_hz, 450.5);
}

TEST(FleetConfig, PolicySpellings) {
  EXPECT_EQ(dispatch_policy_from("rr"), DispatchPolicy::kRoundRobin);
  EXPECT_EQ(dispatch_policy_from("round-robin"), DispatchPolicy::kRoundRobin);
  EXPECT_EQ(dispatch_policy_from("roundrobin"), DispatchPolicy::kRoundRobin);
  EXPECT_EQ(dispatch_policy_from("least"), DispatchPolicy::kLeastLoaded);
  EXPECT_EQ(dispatch_policy_from("least-loaded"), DispatchPolicy::kLeastLoaded);
  EXPECT_EQ(dispatch_policy_from("energy"), DispatchPolicy::kEnergyAware);
  EXPECT_EQ(dispatch_policy_from("energy-aware"), DispatchPolicy::kEnergyAware);
  EXPECT_THROW(dispatch_policy_from("warmest"), std::invalid_argument);
  EXPECT_THROW(dispatch_policy_from(""), std::invalid_argument);
}

TEST(FleetConfig, ParseErrors) {
  EXPECT_THROW(FleetConfig::parse(""), std::invalid_argument);
  EXPECT_THROW(FleetConfig::parse("0"), std::invalid_argument);
  EXPECT_THROW(FleetConfig::parse("1025"), std::invalid_argument);
  EXPECT_THROW(FleetConfig::parse("x"), std::invalid_argument);
  EXPECT_THROW(FleetConfig::parse("-4"), std::invalid_argument);
  EXPECT_THROW(FleetConfig::parse("4:warmest"), std::invalid_argument);
  EXPECT_THROW(FleetConfig::parse("4:rr:"), std::invalid_argument);
  EXPECT_THROW(FleetConfig::parse("4:rr:-5"), std::invalid_argument);
  EXPECT_THROW(FleetConfig::parse("4:rr:nan"), std::invalid_argument);
  EXPECT_THROW(FleetConfig::parse("4:rr:1e9"), std::invalid_argument);
  EXPECT_THROW(FleetConfig::parse("4:rr:300:extra"), std::invalid_argument);
}

TEST(FleetConfig, CanonicalRoundTripsThroughParse) {
  for (const char* text : {"1", "4:rr", "16:least:120.25", "1024:energy:1"}) {
    const FleetConfig a = FleetConfig::parse(text);
    const FleetConfig b = FleetConfig::parse(a.canonical());
    EXPECT_EQ(a.nodes, b.nodes) << text;
    EXPECT_EQ(a.policy, b.policy) << text;
    EXPECT_DOUBLE_EQ(a.rate_hz, b.rate_hz) << text;
    EXPECT_EQ(a.canonical(), b.canonical()) << text;
  }
}

TEST(FleetConfig, CanonicalRoundTripFuzz) {
  Rng rng(0xf1ee7);
  const DispatchPolicy policies[] = {DispatchPolicy::kRoundRobin,
                                     DispatchPolicy::kLeastLoaded,
                                     DispatchPolicy::kEnergyAware};
  for (int i = 0; i < 500; ++i) {
    FleetConfig cfg;
    cfg.nodes = 1 + static_cast<int>(rng.next_u64() % 1024);
    cfg.policy = policies[rng.next_u64() % 3];
    // Grammar rates survive a to_string round trip at <= 6 fractional
    // digits, which is all canonical() emits.
    cfg.rate_hz = (1 + rng.next_u64() % 1'000'000) / 100.0;
    const FleetConfig back = FleetConfig::parse(cfg.canonical());
    EXPECT_EQ(back.nodes, cfg.nodes);
    EXPECT_EQ(back.policy, cfg.policy);
    EXPECT_NEAR(back.rate_hz, cfg.rate_hz, 1e-6);
  }
}

TEST(FleetConfig, ValidateRejectsBadApiFields) {
  const auto bad = [](auto mutate) {
    FleetConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  };
  bad([](FleetConfig& c) { c.nodes = 0; });
  bad([](FleetConfig& c) { c.rate_hz = 0; });
  bad([](FleetConfig& c) { c.duration = 0; });
  bad([](FleetConfig& c) { c.quantum = 0; });
  bad([](FleetConfig& c) { c.quantum = c.duration + 1; });
  bad([](FleetConfig& c) { c.node_policy = "cfs"; });
  bad([](FleetConfig& c) { c.burst_factor = 0.5; });
  bad([](FleetConfig& c) { c.zipf_theta = -1; });
  bad([](FleetConfig& c) { c.load_cap = 0.1; });
  bad([](FleetConfig& c) { c.consolidation_bias = -0.5; });
  FleetConfig ok;
  EXPECT_NO_THROW(ok.validate());
}

}  // namespace
}  // namespace sb::fleet
